package core

import (
	"bytes"
	"testing"
)

// TestMessengerSelfHealLifecycle is the acceptance scenario: the radio
// breaks mid-run, the messenger retries with backoff, fails over to the
// movement channel, confirms the delivery by implicit acknowledgement,
// and fails back to the radio after it is repaired.
func TestMessengerSelfHealLifecycle(t *testing.T) {
	net := buildNetwork(t, 4, false, 21)
	radio := NewRadio(4, 3)
	bm, err := NewBackupMessenger(radio, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := bm.SetPolicy(DefaultMessengerPolicy()); err != nil {
		t.Fatal(err)
	}

	// Healthy phase: instantaneous radio delivery.
	if err := bm.Send(0, 1, []byte("PRE")); err != nil {
		t.Fatal(err)
	}
	if got := radio.Receive(1); len(got) != 1 || !bytes.Equal(got[0].Payload, []byte("PRE")) {
		t.Fatalf("healthy radio did not deliver: %v", got)
	}
	if bm.Health(0) != ChannelRadio {
		t.Fatal("healthy sender not on the radio channel")
	}

	// The radio breaks mid-run; the next message must retry, fail over,
	// ride the movement channel, and be implicitly acknowledged.
	if err := radio.Break(0); err != nil {
		t.Fatal(err)
	}
	want := []byte("F")
	if err := bm.Send(0, 2, want); err != nil {
		t.Fatal(err)
	}
	if st := bm.DetailedStats(); st.PendingRetries != 1 {
		t.Fatalf("failed send not on the retry queue: %+v", st)
	}
	if _, err := bm.RunUntilSettled(200_000); err != nil {
		t.Fatal(err)
	}
	got, _, err := net.RunUntilDelivered(1, 0)
	if err != nil || got[0].To != 2 || !bytes.Equal(got[0].Payload, want) {
		t.Fatalf("failover delivery = %v, %v", got, err)
	}
	st := bm.DetailedStats()
	if st.Retries != DefaultMessengerPolicy().MaxRetries {
		t.Errorf("retries = %d, want %d", st.Retries, DefaultMessengerPolicy().MaxRetries)
	}
	if st.Failovers != 1 || st.ViaMovement != 1 {
		t.Errorf("failover not recorded: %+v", st)
	}
	if st.ImplicitAcks != 1 || st.AwaitingAck != 0 {
		t.Errorf("implicit acknowledgement not detected: %+v", st)
	}
	if bm.Health(0) != ChannelMovement {
		t.Error("sender not failed over")
	}

	// The radio is repaired; the next send probes it and fails back.
	if err := radio.Repair(0); err != nil {
		t.Fatal(err)
	}
	if err := bm.Send(0, 3, []byte("POST")); err != nil {
		t.Fatal(err)
	}
	if got := radio.Receive(3); len(got) != 1 || !bytes.Equal(got[0].Payload, []byte("POST")) {
		t.Fatalf("failback did not use the radio: %v", got)
	}
	st = bm.DetailedStats()
	if st.Failbacks != 1 {
		t.Errorf("failback not recorded: %+v", st)
	}
	if bm.Health(0) != ChannelRadio {
		t.Error("sender did not return to the radio channel")
	}
}

// TestMessengerProbeThrottling: while failed over and before the radio
// recovers, probes are spaced ProbeEvery instants apart — in between,
// traffic goes straight to the movement channel without touching the
// radio.
func TestMessengerProbeThrottling(t *testing.T) {
	net := buildNetwork(t, 3, false, 22)
	radio := NewRadio(3, 3)
	bm, err := NewBackupMessenger(radio, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := bm.SetPolicy(MessengerPolicy{MaxRetries: 1, Backoff: 1, ProbeEvery: 1_000_000}); err != nil {
		t.Fatal(err)
	}
	if err := radio.Break(0); err != nil {
		t.Fatal(err)
	}
	if err := bm.Send(0, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := bm.RunUntilSettled(200_000); err != nil {
		t.Fatal(err)
	}
	if bm.Health(0) != ChannelMovement {
		t.Fatal("sender not failed over")
	}
	// Repair the radio: with the huge probe interval the next send must
	// NOT probe — it stays on the movement channel.
	if err := radio.Repair(0); err != nil {
		t.Fatal(err)
	}
	sentBefore, _, _ := radio.Stats()
	if err := bm.Send(0, 2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if sentAfter, _, _ := radio.Stats(); sentAfter != sentBefore {
		t.Error("probe fired before ProbeEvery elapsed")
	}
	if bm.Health(0) != ChannelMovement {
		t.Error("sender failed back without a probe")
	}
}

// TestMessengerDeadlineExpiry: a short deadline fails a message over
// before its retry budget is spent.
func TestMessengerDeadlineExpiry(t *testing.T) {
	net := buildNetwork(t, 3, false, 23)
	radio := NewRadio(3, 3)
	bm, err := NewBackupMessenger(radio, net)
	if err != nil {
		t.Fatal(err)
	}
	// 100 retries but a 4-instant deadline: the deadline wins.
	if err := bm.SetPolicy(MessengerPolicy{MaxRetries: 100, Backoff: 2, Deadline: 4, ProbeEvery: 16}); err != nil {
		t.Fatal(err)
	}
	if err := radio.Break(0); err != nil {
		t.Fatal(err)
	}
	if err := bm.Send(0, 1, []byte("d")); err != nil {
		t.Fatal(err)
	}
	if _, err := bm.RunUntilSettled(200_000); err != nil {
		t.Fatal(err)
	}
	st := bm.DetailedStats()
	if st.Expired != 1 || st.Failovers != 1 {
		t.Errorf("deadline expiry not recorded: %+v", st)
	}
	if st.Retries >= 100 {
		t.Errorf("retry budget spent despite the deadline: %+v", st)
	}
}

// TestMessengerZeroRetriesDivertsImmediately: MaxRetries 0 keeps the
// legacy shape (fail over on first failure) under the self-heal
// machinery, including the acknowledgement watch.
func TestMessengerZeroRetriesDivertsImmediately(t *testing.T) {
	net := buildNetwork(t, 3, false, 24)
	radio := NewRadio(3, 3)
	bm, err := NewBackupMessenger(radio, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := bm.SetPolicy(MessengerPolicy{MaxRetries: 0, Backoff: 1, ProbeEvery: 8}); err != nil {
		t.Fatal(err)
	}
	if err := radio.Break(0); err != nil {
		t.Fatal(err)
	}
	if err := bm.Send(0, 1, []byte("now")); err != nil {
		t.Fatal(err)
	}
	st := bm.DetailedStats()
	if st.ViaMovement != 1 || st.Failovers != 1 || st.PendingRetries != 0 {
		t.Errorf("immediate divert not recorded: %+v", st)
	}
	if _, err := bm.RunUntilSettled(200_000); err != nil {
		t.Fatal(err)
	}
	if st := bm.DetailedStats(); st.ImplicitAcks != 1 {
		t.Errorf("implicit acknowledgement missing: %+v", st)
	}
}

func TestMessengerPolicyValidation(t *testing.T) {
	net := buildNetwork(t, 3, false, 25)
	radio := NewRadio(3, 3)
	bm, err := NewBackupMessenger(radio, net)
	if err != nil {
		t.Fatal(err)
	}
	bad := []MessengerPolicy{
		{MaxRetries: -1, Backoff: 1, ProbeEvery: 1},
		{MaxRetries: 1, Backoff: 0, ProbeEvery: 1},
		{MaxRetries: 1, Backoff: 1, ProbeEvery: 0},
		{MaxRetries: 1, Backoff: 1, Deadline: -1, ProbeEvery: 1},
	}
	for _, p := range bad {
		if err := bm.SetPolicy(p); err == nil {
			t.Errorf("policy %+v accepted", p)
		}
	}
	if err := bm.SetPolicy(DefaultMessengerPolicy()); err != nil {
		t.Fatal(err)
	}
	// A policy change with traffic in flight is rejected.
	if err := radio.Break(0); err != nil {
		t.Fatal(err)
	}
	if err := bm.Send(0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := bm.SetPolicy(DefaultMessengerPolicy()); err == nil {
		t.Error("policy change with traffic in flight accepted")
	}
	// Out-of-range endpoints are rejected up front under self-healing.
	if err := bm.Send(0, 99, []byte("x")); err == nil {
		t.Error("out-of-range recipient accepted")
	}
}

// TestMessengerLegacyStatsUnchanged: without SetPolicy the messenger
// keeps the original fall-back-once behaviour and Tick is a no-op.
func TestMessengerLegacyStatsUnchanged(t *testing.T) {
	net := buildNetwork(t, 3, false, 26)
	radio := NewRadio(3, 3)
	bm, err := NewBackupMessenger(radio, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := radio.Break(0); err != nil {
		t.Fatal(err)
	}
	if err := bm.Send(0, 1, []byte("L")); err != nil {
		t.Fatal(err)
	}
	if err := bm.Tick(); err != nil {
		t.Fatal(err)
	}
	st := bm.DetailedStats()
	if st.ViaMovement != 1 || st.Retries != 0 || st.Failovers != 0 {
		t.Errorf("legacy path gained self-heal state: %+v", st)
	}
	if bm.Health(0) != ChannelRadio {
		t.Error("legacy messenger reports a failed-over channel")
	}
}
