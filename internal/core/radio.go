package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"waggle/internal/detrand"
	"waggle/internal/obs"
)

// ErrRadioFailed is returned when a transmission is lost and the sender
// detects it (no acknowledgement).
var ErrRadioFailed = errors.New("core: radio transmission failed")

// RadioMessage is one message carried (or dropped) by the wireless
// substrate.
type RadioMessage struct {
	From, To int
	Payload  []byte
}

// Radio simulates the conventional communication device the paper's
// robots may carry — and may lose. Delivery is instantaneous; faults are
// injected per robot (a broken transmitter) or per message (a jammed
// environment: the paper's "zones with blocked wireless communication").
// Senders learn about losses synchronously, modelling an acknowledgement
// timeout.
type Radio struct {
	n   int
	rng *rand.Rand
	// src counts the jam stream's draws so checkpoints can capture the
	// stream position as (seed, draws). It wraps the same seeded source
	// used before it existed: the stream is byte-identical.
	src    *detrand.CountingSource
	seed   int64
	broken []bool
	// JamProb is the probability that any single transmission is lost to
	// interference.
	JamProb float64

	inboxes   [][]RadioMessage
	sent      int
	lost      int
	delivered int

	// obs is the optional observability hook. The radio has no notion
	// of simulated time, so it feeds counters only, never trace events;
	// the messenger (which knows the instant) records the events.
	obs *obs.Observer
}

// NewRadio creates a radio network for n robots with the given fault
// seed.
func NewRadio(n int, seed int64) *Radio {
	src, rng := detrand.New(seed)
	return &Radio{
		n:       n,
		rng:     rng,
		src:     src,
		seed:    seed,
		broken:  make([]bool, n),
		inboxes: make([][]RadioMessage, n),
	}
}

// Break permanently disables robot i's transmitter (a faulty wireless
// device). Like Send, it reports out-of-range indices as an error
// instead of panicking.
func (r *Radio) Break(i int) error {
	if i < 0 || i >= r.n {
		return fmt.Errorf("core: radio robot %d out of range [0,%d)", i, r.n)
	}
	r.broken[i] = true
	return nil
}

// Repair restores robot i's transmitter. Like Send, it reports
// out-of-range indices as an error instead of panicking.
func (r *Radio) Repair(i int) error {
	if i < 0 || i >= r.n {
		return fmt.Errorf("core: radio robot %d out of range [0,%d)", i, r.n)
	}
	r.broken[i] = false
	return nil
}

// Broken reports whether robot i's transmitter is out of order.
// Out-of-range indices report false (no such robot, hence no fault).
func (r *Radio) Broken(i int) bool {
	if i < 0 || i >= r.n {
		return false
	}
	return r.broken[i]
}

// SetObserver attaches (or, with nil, detaches) the observability hook.
func (r *Radio) SetObserver(o *obs.Observer) { r.obs = o }

// Observer returns the attached observer, or nil.
func (r *Radio) Observer() *obs.Observer { return r.obs }

// Send transmits a message, returning ErrRadioFailed when it is lost
// (broken transmitter or jamming). The broken-transmitter check must
// stay ahead of the jam draw: a broken sender consumes no randomness,
// and reordering would shift every later draw and change seeded
// executions.
func (r *Radio) Send(from, to int, payload []byte) error {
	if from < 0 || from >= r.n || to < 0 || to >= r.n {
		return fmt.Errorf("core: radio endpoints %d->%d out of range", from, to)
	}
	r.sent++
	if o := r.obs; o != nil {
		o.Radio.Sends.Inc()
	}
	if r.broken[from] {
		r.lost++
		if o := r.obs; o != nil {
			o.Radio.BrokenDrops.Inc()
		}
		return ErrRadioFailed
	}
	if r.JamProb > 0 && r.rng.Float64() < r.JamProb {
		r.lost++
		if o := r.obs; o != nil {
			o.Radio.JamDrops.Inc()
		}
		return ErrRadioFailed
	}
	msg := RadioMessage{From: from, To: to, Payload: append([]byte(nil), payload...)}
	r.inboxes[to] = append(r.inboxes[to], msg)
	r.delivered++
	if o := r.obs; o != nil {
		o.Radio.Delivered.Inc()
	}
	return nil
}

// Receive drains robot i's radio inbox. Out-of-range indices return nil
// (no such robot, hence no inbox), matching Broken's contract instead of
// panicking.
func (r *Radio) Receive(i int) []RadioMessage {
	if i < 0 || i >= r.n {
		return nil
	}
	out := r.inboxes[i]
	r.inboxes[i] = nil
	return out
}

// SetJamming validates and sets the jamming probability. NaN and values
// outside [0,1] are rejected instead of silently behaving as always-lose
// (p > 1) or never-lose (negative).
func (r *Radio) SetJamming(p float64) error {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return fmt.Errorf("core: jam probability %v outside [0,1]", p)
	}
	r.JamProb = p
	return nil
}

// Stats returns (sent, delivered, lost) counters.
func (r *Radio) Stats() (sent, delivered, lost int) {
	return r.sent, r.delivered, r.lost
}

// RadioSnapshot is the checkpointable state of a Radio: the jam-stream
// position as (seed, draws), the per-robot transmitter faults, the
// undrained inboxes, and the statistics counters.
type RadioSnapshot struct {
	N         int
	Seed      int64
	Draws     uint64
	JamProb   float64
	Broken    []bool
	Inboxes   [][]RadioMessage
	Sent      int
	Lost      int
	Delivered int
}

// Snapshot captures the radio's complete deterministic state. All
// slices (and message payloads) are deep copies.
func (r *Radio) Snapshot() RadioSnapshot {
	s := RadioSnapshot{
		N:         r.n,
		Seed:      r.seed,
		JamProb:   r.JamProb,
		Broken:    append([]bool(nil), r.broken...),
		Inboxes:   make([][]RadioMessage, len(r.inboxes)),
		Sent:      r.sent,
		Lost:      r.lost,
		Delivered: r.delivered,
	}
	if r.src != nil {
		s.Draws = r.src.Draws()
	}
	for i, box := range r.inboxes {
		if box == nil {
			continue
		}
		msgs := make([]RadioMessage, len(box))
		for j, m := range box {
			msgs[j] = RadioMessage{From: m.From, To: m.To, Payload: append([]byte(nil), m.Payload...)}
		}
		s.Inboxes[i] = msgs
	}
	return s
}

// Seed returns the seed the jam stream was created with.
func (r *Radio) Seed() int64 { return r.seed }

// Draws returns how many jam-stream values have been drawn.
func (r *Radio) Draws() uint64 {
	if r.src == nil {
		return 0
	}
	return r.src.Draws()
}

// BackupMessenger — the paper's fault-tolerance application of movement
// signalling as a wireless backup — lives in messenger.go.
