package core

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrRadioFailed is returned when a transmission is lost and the sender
// detects it (no acknowledgement).
var ErrRadioFailed = errors.New("core: radio transmission failed")

// RadioMessage is one message carried (or dropped) by the wireless
// substrate.
type RadioMessage struct {
	From, To int
	Payload  []byte
}

// Radio simulates the conventional communication device the paper's
// robots may carry — and may lose. Delivery is instantaneous; faults are
// injected per robot (a broken transmitter) or per message (a jammed
// environment: the paper's "zones with blocked wireless communication").
// Senders learn about losses synchronously, modelling an acknowledgement
// timeout.
type Radio struct {
	n      int
	rng    *rand.Rand
	broken []bool
	// JamProb is the probability that any single transmission is lost to
	// interference.
	JamProb float64

	inboxes   [][]RadioMessage
	sent      int
	lost      int
	delivered int
}

// NewRadio creates a radio network for n robots with the given fault
// seed.
func NewRadio(n int, seed int64) *Radio {
	return &Radio{
		n:       n,
		rng:     rand.New(rand.NewSource(seed)),
		broken:  make([]bool, n),
		inboxes: make([][]RadioMessage, n),
	}
}

// Break permanently disables robot i's transmitter (a faulty wireless
// device). Like Send, it reports out-of-range indices as an error
// instead of panicking.
func (r *Radio) Break(i int) error {
	if i < 0 || i >= r.n {
		return fmt.Errorf("core: radio robot %d out of range [0,%d)", i, r.n)
	}
	r.broken[i] = true
	return nil
}

// Repair restores robot i's transmitter. Like Send, it reports
// out-of-range indices as an error instead of panicking.
func (r *Radio) Repair(i int) error {
	if i < 0 || i >= r.n {
		return fmt.Errorf("core: radio robot %d out of range [0,%d)", i, r.n)
	}
	r.broken[i] = false
	return nil
}

// Broken reports whether robot i's transmitter is out of order.
// Out-of-range indices report false (no such robot, hence no fault).
func (r *Radio) Broken(i int) bool {
	if i < 0 || i >= r.n {
		return false
	}
	return r.broken[i]
}

// Send transmits a message, returning ErrRadioFailed when it is lost
// (broken transmitter or jamming).
func (r *Radio) Send(from, to int, payload []byte) error {
	if from < 0 || from >= r.n || to < 0 || to >= r.n {
		return fmt.Errorf("core: radio endpoints %d->%d out of range", from, to)
	}
	r.sent++
	if r.broken[from] || (r.JamProb > 0 && r.rng.Float64() < r.JamProb) {
		r.lost++
		return ErrRadioFailed
	}
	msg := RadioMessage{From: from, To: to, Payload: append([]byte(nil), payload...)}
	r.inboxes[to] = append(r.inboxes[to], msg)
	r.delivered++
	return nil
}

// Receive drains robot i's radio inbox.
func (r *Radio) Receive(i int) []RadioMessage {
	out := r.inboxes[i]
	r.inboxes[i] = nil
	return out
}

// Stats returns (sent, delivered, lost) counters.
func (r *Radio) Stats() (sent, delivered, lost int) {
	return r.sent, r.delivered, r.lost
}

// BackupMessenger is the paper's fault-tolerance application: messages
// go over the radio when it works and fall back to movement signalling
// when it does not ("our solution can serve as a communication backup",
// §1). The movement channel is the coupled Network.
type BackupMessenger struct {
	radio *Radio
	net   *Network

	viaRadio    int
	viaMovement int
}

// NewBackupMessenger couples a radio with a movement-signal network of
// the same size.
func NewBackupMessenger(radio *Radio, net *Network) (*BackupMessenger, error) {
	if radio == nil || net == nil {
		return nil, errors.New("core: nil radio or network")
	}
	if radio.n != net.World().N() {
		return nil, fmt.Errorf("core: radio for %d robots, network for %d", radio.n, net.World().N())
	}
	return &BackupMessenger{radio: radio, net: net}, nil
}

// Send delivers the message over the radio if possible, otherwise
// queues it on the movement channel.
func (b *BackupMessenger) Send(from, to int, payload []byte) error {
	err := b.radio.Send(from, to, payload)
	if err == nil {
		b.viaRadio++
		return nil
	}
	if !errors.Is(err, ErrRadioFailed) {
		return err
	}
	if qErr := b.net.Send(from, to, payload); qErr != nil {
		return qErr
	}
	b.viaMovement++
	return nil
}

// Network exposes the movement channel, whose simulation the caller
// drives (Step / RunUntil*).
func (b *BackupMessenger) Network() *Network { return b.net }

// Radio exposes the wireless substrate.
func (b *BackupMessenger) Radio() *Radio { return b.radio }

// Stats returns how many messages went over each channel.
func (b *BackupMessenger) Stats() (viaRadio, viaMovement int) {
	return b.viaRadio, b.viaMovement
}
