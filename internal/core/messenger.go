package core

import (
	"bytes"
	"errors"
	"fmt"

	"waggle/internal/obs"
)

// Channel identifies which substrate a sender's traffic currently uses.
type Channel int

// Channels of a BackupMessenger.
const (
	// ChannelRadio is the healthy state: messages go over the wireless
	// device, instantaneously.
	ChannelRadio Channel = iota
	// ChannelMovement is the failed-over state: the sender's radio has
	// exhausted its retries and traffic rides the movement channel until
	// a probe finds the radio working again.
	ChannelMovement
)

// String implements fmt.Stringer.
func (c Channel) String() string {
	switch c {
	case ChannelRadio:
		return "radio"
	case ChannelMovement:
		return "movement"
	default:
		return fmt.Sprintf("Channel(%d)", int(c))
	}
}

// MessengerPolicy configures the self-healing behaviour of a
// BackupMessenger. The zero value means "legacy": no retries, immediate
// failover per message, no per-sender state — exactly the original
// fall-back-once messenger.
type MessengerPolicy struct {
	// MaxRetries is how many radio re-attempts a failed message gets
	// (via Tick) before failing over to the movement channel.
	MaxRetries int
	// Backoff is the number of instants before the first retry; it
	// doubles after every failed retry. Minimum 1.
	Backoff int
	// Deadline fails a message over to the movement channel once this
	// many instants have passed since submission, even with retries
	// left. 0 disables the deadline.
	Deadline int
	// ProbeEvery is how many instants a failed-over sender waits between
	// radio probes (attempted failbacks). Minimum 1.
	ProbeEvery int
}

// DefaultMessengerPolicy returns the self-healing defaults used by the
// chaos harness: three retries starting after two instants, a deadline
// of 64 instants, and a radio probe every 16 instants while failed
// over.
func DefaultMessengerPolicy() MessengerPolicy {
	return MessengerPolicy{MaxRetries: 3, Backoff: 2, Deadline: 64, ProbeEvery: 16}
}

func (p MessengerPolicy) validate() error {
	if p.MaxRetries < 0 || p.Backoff < 1 || p.Deadline < 0 || p.ProbeEvery < 1 {
		return fmt.Errorf("core: invalid messenger policy %+v", p)
	}
	return nil
}

// MessengerStats are the counters of a BackupMessenger.
type MessengerStats struct {
	// ViaRadio and ViaMovement count delivered submissions per channel.
	ViaRadio, ViaMovement int
	// Retries counts radio re-attempts (initial sends excluded).
	Retries int
	// Failovers counts radio→movement transitions of a sender;
	// Failbacks counts the reverse.
	Failovers, Failbacks int
	// Expired counts messages failed over because their deadline passed
	// before the retry budget did.
	Expired int
	// ImplicitAcks counts failed-over messages whose delivery was
	// confirmed from the observed swarm motion (Lemma 4.1).
	ImplicitAcks int
	// PendingRetries and AwaitingAck are the current queue depths.
	PendingRetries, AwaitingAck int
}

// pendingMsg is a radio message in its retry loop.
type pendingMsg struct {
	from, to  int
	payload   []byte
	submitted int // instant of first attempt
	attempts  int // retries already performed
	nextTry   int
}

// ackWatch is a failed-over message awaiting its implicit
// acknowledgement from the movement channel.
type ackWatch struct {
	from, to int
	payload  []byte
}

// BackupMessenger is the paper's fault-tolerance application: messages
// go over the radio when it works and fall back to movement signalling
// when it does not ("our solution can serve as a communication backup",
// §1). The movement channel is the coupled Network.
//
// With a policy set (SetPolicy) the messenger is self-healing: a failed
// radio send is retried with exponential backoff, fails over to the
// movement channel when the retry budget or the per-message deadline is
// exhausted, and is then watched for its implicit acknowledgement — the
// delivery record decoded from the receiver-observed swarm motion,
// which is exactly the sender-side inference of Lemma 4.1. A
// failed-over sender periodically probes the radio with its next real
// message and fails back as soon as a probe succeeds. Drive the
// bookkeeping by calling Tick once per simulation instant, or use
// Step / RunUntilSettled which do it for you.
type BackupMessenger struct {
	radio *Radio
	net   *Network

	stats MessengerStats

	// obs mirrors the stats counters into the observability registry and
	// records channel-health trace events. Nil means disabled.
	obs *obs.Observer

	// Self-healing state; selfHeal false means the legacy
	// fall-back-once behaviour.
	selfHeal  bool
	policy    MessengerPolicy
	pending   []pendingMsg
	watches   []ackWatch
	ackCursor int
	mode      []Channel
	probeAt   []int
}

// NewBackupMessenger couples a radio with a movement-signal network of
// the same size.
func NewBackupMessenger(radio *Radio, net *Network) (*BackupMessenger, error) {
	if radio == nil || net == nil {
		return nil, errors.New("core: nil radio or network")
	}
	if radio.n != net.World().N() {
		return nil, fmt.Errorf("core: radio for %d robots, network for %d", radio.n, net.World().N())
	}
	b := &BackupMessenger{radio: radio, net: net}
	// Inherit the network's observer so a swarm instrumented before the
	// messenger exists needs no extra wiring.
	if o := net.Observer(); o != nil {
		b.SetObserver(o)
	}
	return b, nil
}

// SetObserver attaches (or, with nil, detaches) the observability hook,
// propagating it to the radio when the radio has none of its own.
func (b *BackupMessenger) SetObserver(o *obs.Observer) {
	b.obs = o
	if o != nil && b.radio.Observer() == nil {
		b.radio.SetObserver(o)
	}
}

// Observer returns the attached observer, or nil.
func (b *BackupMessenger) Observer() *obs.Observer { return b.obs }

// observeQueues refreshes the queue-depth gauges; callers invoke it at
// the end of any operation that can grow or drain the queues.
func (b *BackupMessenger) observeQueues() {
	if o := b.obs; o != nil {
		o.Msgr.PendingRetries.Set(float64(len(b.pending)))
		o.Msgr.AwaitingAck.Set(float64(len(b.watches)))
	}
}

// SetPolicy enables self-healing with the given policy. Call it before
// any traffic; switching policies mid-flight is rejected while retries
// or acknowledgement watches are outstanding.
func (b *BackupMessenger) SetPolicy(p MessengerPolicy) error {
	if err := p.validate(); err != nil {
		return err
	}
	if len(b.pending) > 0 || len(b.watches) > 0 {
		return errors.New("core: messenger policy change with traffic in flight")
	}
	b.selfHeal = true
	b.policy = p
	if b.mode == nil {
		n := b.radio.n
		b.mode = make([]Channel, n)
		b.probeAt = make([]int, n)
	}
	return nil
}

// Send submits a message. Over a healthy radio it is delivered
// instantaneously; otherwise the self-healing machinery (or, without a
// policy, the legacy immediate fall-back) takes over. A nil return
// means the message is delivered or queued — on the retry queue, or on
// the movement channel, which the caller drives (Step / RunUntil*).
func (b *BackupMessenger) Send(from, to int, payload []byte) error {
	if !b.selfHeal {
		err := b.radio.Send(from, to, payload)
		if err == nil {
			b.viaRadio()
			return nil
		}
		if !errors.Is(err, ErrRadioFailed) {
			return err
		}
		if qErr := b.net.Send(from, to, payload); qErr != nil {
			return qErr
		}
		b.viaMovement()
		return nil
	}
	// Validate the endpoints up front so retry attempts can only fail
	// with ErrRadioFailed.
	if from < 0 || from >= b.radio.n || to < 0 || to >= b.radio.n {
		return fmt.Errorf("core: messenger endpoints %d->%d out of range", from, to)
	}
	now := b.net.World().Time()
	if b.mode[from] == ChannelMovement {
		if now >= b.probeAt[from] {
			// Probe the radio with this real message (an attempted
			// failback).
			if err := b.radio.Send(from, to, payload); err == nil {
				b.viaRadio()
				b.mode[from] = ChannelRadio
				b.stats.Failbacks++
				if o := b.obs; o != nil {
					o.Msgr.Failbacks.Inc()
					o.Record(obs.Event{T: now, Kind: obs.EvFailback, Robot: from, Peer: to})
				}
				return nil
			}
			b.probeAt[from] = now + b.policy.ProbeEvery
		}
		return b.divert(from, to, payload, now)
	}
	if err := b.radio.Send(from, to, payload); err == nil {
		b.viaRadio()
		return nil
	}
	if b.policy.MaxRetries == 0 {
		return b.divert(from, to, payload, now)
	}
	b.pending = append(b.pending, pendingMsg{
		from: from, to: to,
		payload:   append([]byte(nil), payload...),
		submitted: now,
		nextTry:   now + b.policy.Backoff,
	})
	b.observeQueues()
	return nil
}

// viaRadio and viaMovement bump the per-channel delivery counters in
// both the legacy stats struct and the registry.
func (b *BackupMessenger) viaRadio() {
	b.stats.ViaRadio++
	if o := b.obs; o != nil {
		o.Msgr.ViaRadio.Inc()
	}
}

func (b *BackupMessenger) viaMovement() {
	b.stats.ViaMovement++
	if o := b.obs; o != nil {
		o.Msgr.ViaMovement.Inc()
	}
}

// divert routes a message over the movement channel, switching the
// sender's mode (a failover) if it was still on the radio, and watching
// for the implicit acknowledgement.
func (b *BackupMessenger) divert(from, to int, payload []byte, now int) error {
	if err := b.net.Send(from, to, payload); err != nil {
		return err
	}
	b.viaMovement()
	if b.mode[from] == ChannelRadio {
		b.mode[from] = ChannelMovement
		b.stats.Failovers++
		if o := b.obs; o != nil {
			o.Msgr.Failovers.Inc()
			o.Record(obs.Event{T: now, Kind: obs.EvFailover, Robot: from, Peer: to})
		}
		b.probeAt[from] = now + b.policy.ProbeEvery
	}
	b.watches = append(b.watches, ackWatch{from: from, to: to, payload: append([]byte(nil), payload...)})
	b.observeQueues()
	return nil
}

// Tick runs one instant of self-healing bookkeeping: due retries,
// deadline-driven failovers, and implicit-acknowledgement detection.
// Call it once per simulation step (after the step); without a policy
// it is a no-op.
func (b *BackupMessenger) Tick() error {
	if !b.selfHeal {
		return nil
	}
	now := b.net.World().Time()
	keep := b.pending[:0]
	for _, m := range b.pending {
		if now < m.nextTry {
			keep = append(keep, m)
			continue
		}
		b.stats.Retries++
		if o := b.obs; o != nil {
			o.Msgr.Retries.Inc()
			o.Record(obs.Event{T: now, Kind: obs.EvRetry, Robot: m.from, Peer: m.to})
		}
		if err := b.radio.Send(m.from, m.to, m.payload); err == nil {
			b.viaRadio()
			continue
		}
		m.attempts++
		expired := b.policy.Deadline > 0 && now-m.submitted >= b.policy.Deadline
		if m.attempts >= b.policy.MaxRetries || expired {
			if expired {
				b.stats.Expired++
				if o := b.obs; o != nil {
					o.Msgr.Expired.Inc()
					o.Record(obs.Event{T: now, Kind: obs.EvExpired, Robot: m.from, Peer: m.to})
				}
			}
			if err := b.divert(m.from, m.to, m.payload, now); err != nil {
				return err
			}
			continue
		}
		m.nextTry = now + b.policy.Backoff<<m.attempts
		keep = append(keep, m)
	}
	b.pending = keep
	// Implicit acknowledgements (Lemma 4.1): a failed-over message is
	// confirmed when its delivery record appears — decoded purely from
	// the receiver's observation of the swarm's motion, which is the
	// same evidence the sender's own observation provides.
	for _, d := range b.net.DeliveredSince(b.ackCursor) {
		b.ackCursor++
		for k, wtc := range b.watches {
			if wtc.from == d.From && wtc.to == d.To && bytes.Equal(wtc.payload, d.Payload) {
				b.watches = append(b.watches[:k], b.watches[k+1:]...)
				b.stats.ImplicitAcks++
				if o := b.obs; o != nil {
					o.Msgr.ImplicitAcks.Inc()
					o.Record(obs.Event{T: now, Kind: obs.EvImplicitAck, Robot: wtc.from, Peer: wtc.to})
				}
				break
			}
		}
	}
	b.observeQueues()
	return nil
}

// Step advances the coupled network one instant and then ticks the
// self-healing machinery.
func (b *BackupMessenger) Step() error {
	if err := b.net.Step(); err != nil {
		return err
	}
	return b.Tick()
}

// Settled reports whether nothing is outstanding: no pending retries,
// no unacknowledged failovers, and an idle movement channel.
func (b *BackupMessenger) Settled() bool {
	return len(b.pending) == 0 && len(b.watches) == 0 && b.net.allIdle()
}

// RunUntilSettled steps the network (ticking per instant) until the
// messenger is settled or the budget runs out, returning the number of
// instants executed.
func (b *BackupMessenger) RunUntilSettled(maxSteps int) (int, error) {
	if err := b.Tick(); err != nil {
		return 0, err
	}
	for step := 0; step < maxSteps; step++ {
		if b.Settled() {
			return step, nil
		}
		if err := b.Step(); err != nil {
			return step, err
		}
	}
	if b.Settled() {
		return maxSteps, nil
	}
	return maxSteps, fmt.Errorf("%w: messenger not settled after %d steps", ErrNotDelivered, maxSteps)
}

// Health returns the channel robot i's traffic currently uses. Without
// a policy every sender reports ChannelRadio (the legacy messenger has
// no per-sender state). Out-of-range indices report ChannelRadio.
func (b *BackupMessenger) Health(i int) Channel {
	if b.mode == nil || i < 0 || i >= len(b.mode) {
		return ChannelRadio
	}
	return b.mode[i]
}

// Network exposes the movement channel, whose simulation the caller
// drives (Step / RunUntil*).
func (b *BackupMessenger) Network() *Network { return b.net }

// Radio exposes the wireless substrate.
func (b *BackupMessenger) Radio() *Radio { return b.radio }

// Stats returns how many messages went over each channel.
func (b *BackupMessenger) Stats() (viaRadio, viaMovement int) {
	return b.stats.ViaRadio, b.stats.ViaMovement
}

// DetailedStats returns the full counter set, including the current
// retry and acknowledgement queue depths.
func (b *BackupMessenger) DetailedStats() MessengerStats {
	s := b.stats
	s.PendingRetries = len(b.pending)
	s.AwaitingAck = len(b.watches)
	return s
}

// Policy returns the active self-healing policy and whether self-healing
// is enabled at all (a zero policy with enabled=false is the legacy
// fall-back-once messenger).
func (b *BackupMessenger) Policy() (p MessengerPolicy, enabled bool) {
	return b.policy, b.selfHeal
}

// PendingSnapshot is one checkpointed retry-queue entry.
type PendingSnapshot struct {
	From, To  int
	Payload   []byte
	Submitted int
	Attempts  int
	NextTry   int
}

// WatchSnapshot is one checkpointed implicit-acknowledgement watch.
type WatchSnapshot struct {
	From, To int
	Payload  []byte
}

// MessengerSnapshot is the checkpointable state of a BackupMessenger:
// counters, retry queue, acknowledgement watches, the delivered-record
// ack cursor, and the per-sender channel modes and probe deadlines.
type MessengerSnapshot struct {
	Stats     MessengerStats
	SelfHeal  bool
	Policy    MessengerPolicy
	Pending   []PendingSnapshot
	Watches   []WatchSnapshot
	AckCursor int
	Mode      []Channel
	ProbeAt   []int
}

// Snapshot captures the messenger's complete deterministic state. All
// slices and payloads are deep copies.
func (b *BackupMessenger) Snapshot() MessengerSnapshot {
	s := MessengerSnapshot{
		Stats:     b.stats,
		SelfHeal:  b.selfHeal,
		Policy:    b.policy,
		AckCursor: b.ackCursor,
	}
	if b.pending != nil {
		s.Pending = make([]PendingSnapshot, len(b.pending))
		for i, m := range b.pending {
			s.Pending[i] = PendingSnapshot{
				From: m.from, To: m.to,
				Payload:   append([]byte(nil), m.payload...),
				Submitted: m.submitted,
				Attempts:  m.attempts,
				NextTry:   m.nextTry,
			}
		}
	}
	if b.watches != nil {
		s.Watches = make([]WatchSnapshot, len(b.watches))
		for i, w := range b.watches {
			s.Watches[i] = WatchSnapshot{From: w.from, To: w.to, Payload: append([]byte(nil), w.payload...)}
		}
	}
	if b.mode != nil {
		s.Mode = append([]Channel(nil), b.mode...)
	}
	if b.probeAt != nil {
		s.ProbeAt = append([]int(nil), b.probeAt...)
	}
	return s
}
