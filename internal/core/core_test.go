package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"waggle/internal/geom"
	"waggle/internal/protocol"
	"waggle/internal/sim"
)

func buildNetwork(t *testing.T, n int, async bool, seed int64) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	positions := make([]geom.Point, 0, n)
	for len(positions) < n {
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		ok := true
		for _, q := range positions {
			if p.Dist(q) < 6 {
				ok = false
				break
			}
		}
		if ok {
			positions = append(positions, p)
		}
	}
	var (
		behaviors []sim.Behavior
		endpoints []*protocol.Endpoint
		err       error
		scheduler sim.Scheduler = sim.Synchronous{}
	)
	if async {
		behaviors, endpoints, err = protocol.NewAsyncN(n, protocol.AsyncNConfig{})
		scheduler = sim.FirstSync{Inner: sim.NewRandomFair(seed)}
	} else {
		behaviors, endpoints, err = protocol.NewSyncN(n, protocol.SyncNConfig{})
	}
	if err != nil {
		t.Fatal(err)
	}
	robots := make([]*sim.Robot, n)
	for i := range robots {
		robots[i] = &sim.Robot{Frame: geom.WorldFrame(), Sigma: 1e9, Behavior: behaviors[i]}
	}
	world, err := sim.NewWorld(sim.Config{Positions: positions, Robots: robots})
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(world, scheduler, endpoints)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil, sim.Synchronous{}, nil); err == nil {
		t.Error("nil world accepted")
	}
	net := buildNetwork(t, 3, false, 1)
	if _, err := NewNetwork(net.World(), nil, nil); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := NewNetwork(net.World(), sim.Synchronous{}, nil); err == nil {
		t.Error("endpoint count mismatch accepted")
	}
	if err := net.Send(-1, 0, []byte("x")); err == nil {
		t.Error("negative sender accepted")
	}
	if err := net.Broadcast(9, []byte("x")); err == nil {
		t.Error("out-of-range broadcaster accepted")
	}
}

func TestNetworkRunUntilDelivered(t *testing.T) {
	for _, async := range []bool{false, true} {
		net := buildNetwork(t, 4, async, 2)
		want := []byte("NETWORK")
		if err := net.Send(0, 2, want); err != nil {
			t.Fatal(err)
		}
		got, steps, err := net.RunUntilDelivered(1, 1_000_000)
		if err != nil {
			t.Fatalf("async=%v: %v", async, err)
		}
		if steps == 0 {
			t.Errorf("async=%v: delivered in zero steps", async)
		}
		if got[0].From != 0 || got[0].To != 2 || !bytes.Equal(got[0].Payload, want) {
			t.Errorf("async=%v: received %+v", async, got[0])
		}
	}
}

func TestNetworkRunUntilQuiet(t *testing.T) {
	net := buildNetwork(t, 3, false, 3)
	if err := net.Send(0, 1, []byte("A")); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(1, 2, []byte("B")); err != nil {
		t.Fatal(err)
	}
	got, _, err := net.RunUntilQuiet(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(got))
	}
	if total := len(net.Delivered()); total != 2 {
		t.Errorf("Delivered() = %d entries, want 2", total)
	}
}

func TestNetworkDeliveryTimeout(t *testing.T) {
	net := buildNetwork(t, 3, false, 4)
	if err := net.Send(0, 1, []byte("SLOW")); err != nil {
		t.Fatal(err)
	}
	_, _, err := net.RunUntilDelivered(1, 3) // hopeless budget
	if !errors.Is(err, ErrNotDelivered) {
		t.Errorf("err = %v, want ErrNotDelivered", err)
	}
}

func TestRadioDeliveryAndFaults(t *testing.T) {
	r := NewRadio(3, 1)
	if err := r.Send(0, 1, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	got := r.Receive(1)
	if len(got) != 1 || !bytes.Equal(got[0].Payload, []byte("hi")) {
		t.Fatalf("radio inbox %v", got)
	}
	if len(r.Receive(1)) != 0 {
		t.Error("Receive did not drain")
	}
	r.Break(0)
	if !r.Broken(0) {
		t.Error("Break not recorded")
	}
	if err := r.Send(0, 1, []byte("lost")); !errors.Is(err, ErrRadioFailed) {
		t.Errorf("broken radio err = %v, want ErrRadioFailed", err)
	}
	r.Repair(0)
	if err := r.Send(0, 1, []byte("back")); err != nil {
		t.Errorf("repaired radio failed: %v", err)
	}
	sent, delivered, lost := r.Stats()
	if sent != 3 || delivered != 2 || lost != 1 {
		t.Errorf("stats = (%d,%d,%d), want (3,2,1)", sent, delivered, lost)
	}
	if err := r.Send(0, 9, nil); err == nil {
		t.Error("out-of-range recipient accepted")
	}
}

func TestRadioJamming(t *testing.T) {
	r := NewRadio(2, 7)
	r.JamProb = 0.5
	losses := 0
	for i := 0; i < 1000; i++ {
		if err := r.Send(0, 1, []byte{1}); errors.Is(err, ErrRadioFailed) {
			losses++
		}
	}
	if losses < 400 || losses > 600 {
		t.Errorf("jamming losses = %d of 1000 at p=0.5", losses)
	}
}

// TestBackupMessenger is experiment C8's core behaviour: with a broken
// transmitter every message still arrives, via movement signalling.
func TestBackupMessenger(t *testing.T) {
	net := buildNetwork(t, 4, false, 5)
	radio := NewRadio(4, 1)
	bm, err := NewBackupMessenger(radio, net)
	if err != nil {
		t.Fatal(err)
	}
	// Working radio: instantaneous delivery, no movement.
	if err := bm.Send(0, 1, []byte("FAST")); err != nil {
		t.Fatal(err)
	}
	if got := radio.Receive(1); len(got) != 1 || !bytes.Equal(got[0].Payload, []byte("FAST")) {
		t.Fatalf("radio path broken: %v", got)
	}
	// Broken radio: falls back to movement.
	radio.Break(0)
	want := []byte("SLOWBUTSURE")
	if err := bm.Send(0, 2, want); err != nil {
		t.Fatal(err)
	}
	got, _, err := net.RunUntilDelivered(1, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].To != 2 || !bytes.Equal(got[0].Payload, want) {
		t.Errorf("fallback delivery %+v", got[0])
	}
	viaRadio, viaMovement := bm.Stats()
	if viaRadio != 1 || viaMovement != 1 {
		t.Errorf("stats = (%d,%d), want (1,1)", viaRadio, viaMovement)
	}
}

func TestBackupMessengerValidation(t *testing.T) {
	if _, err := NewBackupMessenger(nil, nil); err == nil {
		t.Error("nil args accepted")
	}
	net := buildNetwork(t, 3, false, 6)
	if _, err := NewBackupMessenger(NewRadio(5, 1), net); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestNetworkSendAllAndAccessors(t *testing.T) {
	net := buildNetwork(t, 4, false, 7)
	if net.Endpoint(0) == nil {
		t.Fatal("Endpoint accessor broken")
	}
	if err := net.SendAll(0, []byte("EVERYONE")); err != nil {
		t.Fatal(err)
	}
	if err := net.SendAll(-1, []byte("x")); err == nil {
		t.Error("out-of-range SendAll accepted")
	}
	got, _, err := net.RunUntilQuiet(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("SendAll delivered %d, want 3", len(got))
	}
	for _, r := range got {
		if r.From != 0 || !bytes.Equal(r.Payload, []byte("EVERYONE")) {
			t.Errorf("bad copy %+v", r)
		}
	}
}

func TestNetworkBroadcastValidation(t *testing.T) {
	net := buildNetwork(t, 3, false, 8)
	if err := net.Broadcast(0, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := net.RunUntilQuiet(5_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkRunUntilQuietTimeout(t *testing.T) {
	net := buildNetwork(t, 3, false, 9)
	if err := net.Send(0, 1, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := net.RunUntilQuiet(2); !errors.Is(err, ErrNotDelivered) {
		t.Errorf("err = %v, want ErrNotDelivered", err)
	}
}

func TestBackupMessengerAccessors(t *testing.T) {
	net := buildNetwork(t, 3, false, 10)
	radio := NewRadio(3, 2)
	bm, err := NewBackupMessenger(radio, net)
	if err != nil {
		t.Fatal(err)
	}
	if bm.Network() != net || bm.Radio() != radio {
		t.Error("accessors broken")
	}
	// A non-fault radio error propagates rather than falling back.
	if err := bm.Send(0, 99, []byte("x")); err == nil {
		t.Error("out-of-range send accepted")
	}
}

// TestRunUntilDeliveredSurplusSameStep pins the cursor fix: when more
// messages than awaited land in the same final step, the surplus must
// be returned by the next call instead of being silently stranded.
func TestRunUntilDeliveredSurplusSameStep(t *testing.T) {
	// Synchronous swarm, two messages queued at once: their excursions
	// run in lockstep, so both deliveries land in the same instant.
	net := buildNetwork(t, 4, false, 11)
	a, b := []byte("AA"), []byte("BB")
	if err := net.Send(0, 1, a); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(2, 3, b); err != nil {
		t.Fatal(err)
	}
	first, _, err := net.RunUntilDelivered(1, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 1 {
		t.Fatalf("first call returned %d messages, want 1", len(first))
	}
	// Drive the run to completion so the second message has certainly
	// been collected, then ask again with a zero budget: the surplus
	// must be handed out without any further steps.
	if _, _, err := net.RunUntilQuiet(1_000_000); err != nil {
		t.Fatal(err)
	}
	// RunUntilQuiet consumed the surplus — verify it was not lost and
	// both payloads were seen exactly once across the two calls.
	all := net.Delivered()
	if len(all) != 2 {
		t.Fatalf("Delivered() = %d messages, want 2", len(all))
	}
}

// TestRunUntilDeliveredZeroBudgetSurplus is the sharper variant: the
// surplus from a same-step double delivery is available to a follow-up
// call even with a zero step budget.
func TestRunUntilDeliveredZeroBudgetSurplus(t *testing.T) {
	net := buildNetwork(t, 4, false, 12)
	if err := net.Send(0, 1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(2, 3, []byte("two")); err != nil {
		t.Fatal(err)
	}
	// Wait for both, then re-deliver them one at a time from the cursor.
	both, _, err := net.RunUntilDelivered(2, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(both) != 2 {
		t.Fatalf("got %d messages, want 2", len(both))
	}
	net2 := buildNetwork(t, 4, false, 12)
	if err := net2.Send(0, 1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := net2.Send(2, 3, []byte("two")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := net2.RunUntilDelivered(1, 1_000_000); err != nil {
		t.Fatal(err)
	}
	// Run the world until idle WITHOUT consuming (direct world steps),
	// so the second delivery is sitting in the endpoints.
	for i := 0; i < 1_000_000 && !net2.allIdle(); i++ {
		if err := net2.Step(); err != nil {
			t.Fatal(err)
		}
	}
	surplus, steps, err := net2.RunUntilDelivered(1, 0)
	if err != nil {
		t.Fatalf("zero-budget call lost the surplus delivery: %v", err)
	}
	if steps != 0 {
		t.Errorf("zero-budget call executed %d steps", steps)
	}
	if len(surplus) != 1 {
		t.Fatalf("surplus call returned %d messages, want 1", len(surplus))
	}
	if p := string(surplus[0].Payload); p != "one" && p != "two" {
		t.Errorf("surplus payload %q", p)
	}
}

// TestRunUntilQuietReturnsPreRunDeliveries pins the companion fix:
// deliveries collected before the run started — but never handed out by
// any RunUntil* call — are included in RunUntilQuiet's result.
func TestRunUntilQuietReturnsPreRunDeliveries(t *testing.T) {
	net := buildNetwork(t, 3, false, 13)
	want := []byte("EARLY")
	if err := net.Send(0, 1, want); err != nil {
		t.Fatal(err)
	}
	// Deliver via raw steps: the network collects the message but no
	// RunUntil* call consumes it.
	for i := 0; i < 1_000_000 && !net.allIdle(); i++ {
		if err := net.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(net.Delivered()); n != 1 {
		t.Fatalf("setup: %d deliveries, want 1", n)
	}
	got, steps, err := net.RunUntilQuiet(10)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 0 {
		t.Errorf("already-quiet network ran %d steps", steps)
	}
	if len(got) != 1 || !bytes.Equal(got[0].Payload, want) {
		t.Fatalf("pre-run delivery not returned: %v", got)
	}
	// And it is consumed exactly once: a second call returns nothing.
	again, _, err := net.RunUntilQuiet(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Errorf("pre-run delivery returned twice: %v", again)
	}
}

// TestRadioBoundsChecks pins the satellite fix: Break/Repair/Broken
// follow Send's error contract on out-of-range indices instead of
// panicking.
func TestRadioBoundsChecks(t *testing.T) {
	r := NewRadio(3, 1)
	for _, i := range []int{-1, 3, 99} {
		if err := r.Break(i); err == nil {
			t.Errorf("Break(%d) accepted", i)
		}
		if err := r.Repair(i); err == nil {
			t.Errorf("Repair(%d) accepted", i)
		}
		if r.Broken(i) {
			t.Errorf("Broken(%d) = true for a robot that does not exist", i)
		}
	}
	// In-range still works and returns nil.
	if err := r.Break(2); err != nil {
		t.Errorf("Break(2) = %v", err)
	}
	if !r.Broken(2) {
		t.Error("Break(2) not recorded")
	}
	if err := r.Repair(2); err != nil {
		t.Errorf("Repair(2) = %v", err)
	}
	if r.Broken(2) {
		t.Error("Repair(2) not recorded")
	}
}
