package core

import (
	"errors"
	"testing"
)

// TestRunBudgetValidation pins the typed budget errors: negative
// budgets are rejected with a *BudgetError that unwraps to
// ErrInvalidBudget and names the offending parameter.
func TestRunBudgetValidation(t *testing.T) {
	net := buildNetwork(t, 4, false, 12)
	for _, tc := range []struct {
		name  string
		call  func() error
		param string
	}{
		{"delivered-negative-count", func() error { _, _, err := net.RunUntilDelivered(-1, 10); return err }, "count"},
		{"delivered-negative-max", func() error { _, _, err := net.RunUntilDelivered(1, -1); return err }, "maxSteps"},
		{"quiet-negative-max", func() error { _, _, err := net.RunUntilQuiet(-5); return err }, "maxSteps"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if !errors.Is(err, ErrInvalidBudget) {
				t.Fatalf("got %v, want ErrInvalidBudget", err)
			}
			var be *BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("got %T, want *BudgetError", err)
			}
			if be.Param != tc.param {
				t.Fatalf("error names param %q, want %q", be.Param, tc.param)
			}
		})
	}
	// Validation failures must not have stepped the world.
	if got := net.World().Time(); got != 0 {
		t.Fatalf("world stepped to t=%d during validation failures", got)
	}
}

// TestRunZeroBudgetIsCheckWithoutStepping pins the documented zero
// semantics: RunUntilDelivered(0, anything) succeeds immediately with
// an empty batch, and a zero maxSteps checks the current state without
// stepping.
func TestRunZeroBudgetIsCheckWithoutStepping(t *testing.T) {
	net := buildNetwork(t, 4, false, 12)
	msgs, steps, err := net.RunUntilDelivered(0, 0)
	if err != nil || steps != 0 || len(msgs) != 0 {
		t.Fatalf("RunUntilDelivered(0,0) = (%v, %d, %v), want empty success", msgs, steps, err)
	}
	// Zero count always succeeds, even with a huge budget: nothing to
	// wait for means nothing to step.
	msgs, steps, err = net.RunUntilDelivered(0, 1_000_000)
	if err != nil || steps != 0 || len(msgs) != 0 {
		t.Fatalf("RunUntilDelivered(0,big) = (%v, %d, %v), want empty success without stepping", msgs, steps, err)
	}
	if got := net.World().Time(); got != 0 {
		t.Fatalf("zero-count run stepped the world to t=%d", got)
	}
	// Zero maxSteps with an undelivered message pending: the check runs,
	// finds nothing delivered, and reports ErrNotDelivered — without
	// stepping.
	if err := net.Send(0, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	_, steps, err = net.RunUntilDelivered(1, 0)
	if !errors.Is(err, ErrNotDelivered) || steps != 0 {
		t.Fatalf("pending check = (%d, %v), want (0, ErrNotDelivered)", steps, err)
	}
	if got := net.World().Time(); got != 0 {
		t.Fatalf("zero-budget check stepped the world to t=%d", got)
	}
}

// TestRestoreConsumedValidation pins the cursor hardening: restoring a
// cursor outside [0, len(delivered)] fails with a *CursorError that
// unwraps to ErrCorruptCursor, and a valid cursor round-trips.
func TestRestoreConsumedValidation(t *testing.T) {
	net := buildNetwork(t, 4, false, 12)
	if err := net.Send(0, 1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := net.RunUntilDelivered(1, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := net.Consumed(); got != 1 {
		t.Fatalf("consumed = %d, want 1", got)
	}
	for _, bad := range []int{-1, len(net.Delivered()) + 1, 1 << 20} {
		err := net.RestoreConsumed(bad)
		if !errors.Is(err, ErrCorruptCursor) {
			t.Fatalf("RestoreConsumed(%d) = %v, want ErrCorruptCursor", bad, err)
		}
		var ce *CursorError
		if !errors.As(err, &ce) {
			t.Fatalf("RestoreConsumed(%d) = %T, want *CursorError", bad, err)
		}
	}
	// Rewinding to a valid cursor re-exposes the message.
	if err := net.RestoreConsumed(0); err != nil {
		t.Fatalf("RestoreConsumed(0): %v", err)
	}
	msgs, _, err := net.RunUntilDelivered(1, 0)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("after rewind: (%v, %v), want the delivered message again", msgs, err)
	}
}
