package core

import (
	"math"
	"testing"
)

// TestRadioJamDeliveryRateConverges is the property test for
// Radio.JamProb/SetJamming: over many transmissions at jamming
// probability p, the delivery rate converges to 1-p. Seeds are fixed,
// so the observed rates are exact reproducible numbers; the tolerance
// covers the binomial deviation (> 5 sigma at trials=20000), not
// run-to-run noise.
func TestRadioJamDeliveryRateConverges(t *testing.T) {
	const trials = 20_000
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		for _, seed := range []int64{1, 42, 977} {
			r := NewRadio(2, seed)
			if err := r.SetJamming(p); err != nil {
				t.Fatal(err)
			}
			delivered := 0
			for i := 0; i < trials; i++ {
				if err := r.Send(0, 1, []byte{byte(i)}); err == nil {
					delivered++
				}
				// Drain so inboxes do not grow unboundedly.
				r.Receive(1)
			}
			rate := float64(delivered) / trials
			want := 1 - p
			// 5 sigma of a binomial proportion at the worst case p=0.5,
			// plus a floor for the deterministic edges.
			tol := 5*math.Sqrt(0.25/trials) + 1e-9
			if math.Abs(rate-want) > tol {
				t.Errorf("p=%v seed=%d: delivery rate %v, want %v ± %v", p, seed, rate, want, tol)
			}
			// The counters must agree with the observed outcomes.
			sent, del, lost := r.Stats()
			if sent != trials || del != delivered || lost != trials-delivered {
				t.Errorf("p=%v seed=%d: stats (%d,%d,%d) inconsistent with %d/%d delivered",
					p, seed, sent, del, lost, delivered, trials)
			}
		}
	}
}

// TestRadioJamExactEdges pins the deterministic edges: p=0 never
// drops, p=1 always drops, and a broken transmitter drops without
// consuming a jamming draw (the rng-order invariant golden executions
// rely on).
func TestRadioJamExactEdges(t *testing.T) {
	r := NewRadio(2, 7)
	if err := r.Send(0, 1, []byte("x")); err != nil {
		t.Errorf("p=0 dropped: %v", err)
	}
	if err := r.SetJamming(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Send(0, 1, []byte("x")); err == nil {
		t.Error("p=1 delivered")
	}

	// Two radios, same seed, same jamming. One sender breaks for a
	// while: its drops must not advance the jam rng, so after repair the
	// two streams are still in lockstep.
	a, b := NewRadio(2, 9), NewRadio(2, 9)
	for _, r := range []*Radio{a, b} {
		if err := r.SetJamming(0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Break(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := a.Send(0, 1, []byte("y")); err == nil {
			t.Fatal("broken transmitter delivered")
		}
	}
	if err := a.Repair(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		errA := a.Send(0, 1, []byte("z"))
		errB := b.Send(0, 1, []byte("z"))
		if (errA == nil) != (errB == nil) {
			t.Fatalf("send %d: jam rng streams diverged after broken-sender window", i)
		}
		a.Receive(1)
		b.Receive(1)
	}
}
