// Package core couples the SSM simulator with the movement-signal
// protocols into a message-passing network, and implements the paper's
// fault-tolerance motivation: movement signalling as a backup channel
// for robots whose ordinary (wireless) communication devices fail.
package core

import (
	"errors"
	"fmt"

	"waggle/internal/obs"
	"waggle/internal/protocol"
	"waggle/internal/sim"
)

// ErrNotDelivered is returned when a run ends before the awaited
// messages arrive.
var ErrNotDelivered = errors.New("core: messages not delivered within the step budget")

// BudgetError reports a negative step or delivery budget passed to a
// RunUntil* call. (A zero budget is legal: it means "check without
// stepping" — see RunUntilDelivered.) It unwraps to ErrInvalidBudget.
type BudgetError struct {
	// Op is the rejected call, e.g. "RunUntilDelivered".
	Op string
	// Param names the offending parameter ("count" or "maxSteps").
	Param string
	// Value is the rejected budget.
	Value int
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("core: %s: negative %s budget %d", e.Op, e.Param, e.Value)
}

// Unwrap lets errors.Is(err, ErrInvalidBudget) match any BudgetError.
func (e *BudgetError) Unwrap() error { return ErrInvalidBudget }

// ErrInvalidBudget is the sentinel every BudgetError unwraps to.
var ErrInvalidBudget = errors.New("core: invalid budget")

// CursorError reports a consumption cursor inconsistent with the
// delivered log — reachable only through a corrupted or mismatched
// checkpoint restore, never through normal operation. It unwraps to
// ErrCorruptCursor.
type CursorError struct {
	// Consumed is the cursor position, Delivered the log length, and
	// Count the requested window that overran it.
	Consumed, Delivered, Count int
}

// Error implements error.
func (e *CursorError) Error() string {
	return fmt.Sprintf("core: consumption cursor %d + count %d exceeds delivered log of %d (corrupt restore?)",
		e.Consumed, e.Count, e.Delivered)
}

// Unwrap lets errors.Is(err, ErrCorruptCursor) match any CursorError.
func (e *CursorError) Unwrap() error { return ErrCorruptCursor }

// ErrCorruptCursor is the sentinel every CursorError unwraps to.
var ErrCorruptCursor = errors.New("core: corrupt consumption cursor")

// Network is a swarm wired for explicit communication: a world whose
// robots execute a movement-signal protocol, the per-robot endpoints,
// and the activation scheduler. It is the engine behind the public
// waggle.Swarm API.
type Network struct {
	world     *sim.World
	scheduler sim.Scheduler
	endpoints []*protocol.Endpoint

	delivered []protocol.Received
	// consumed is the cursor separating deliveries already handed out by
	// a RunUntil* call from those still pending. Without it, a call that
	// awaited `count` messages while more landed in the same final step
	// would strand the surplus: the next call's window used to start at
	// len(delivered), silently skipping them.
	consumed int
	// collectedTime is the world instant the last endpoint sweep ran at.
	// Endpoints only accumulate receptions inside World.Step (protocol
	// robots deliver during their own activation), so a second sweep at
	// the same instant cannot find anything new — skipping it makes
	// Delivered/DeliveredSince O(new deliveries) between steps instead of
	// O(n), which the delta checkpoint path leans on at large n.
	collectedTime int

	// obs is the optional observability hook: send/delivery counters
	// and trace events. Nil means disabled.
	obs *obs.Observer
}

// NewNetwork assembles a network. The endpoints must be the ones
// driving the world's behaviors.
func NewNetwork(world *sim.World, scheduler sim.Scheduler, endpoints []*protocol.Endpoint) (*Network, error) {
	if world == nil {
		return nil, errors.New("core: nil world")
	}
	if scheduler == nil {
		return nil, errors.New("core: nil scheduler")
	}
	if world.N() != len(endpoints) {
		return nil, fmt.Errorf("core: %d endpoints for %d robots", len(endpoints), world.N())
	}
	return &Network{world: world, scheduler: scheduler, endpoints: endpoints, collectedTime: -1}, nil
}

// World exposes the underlying simulation.
func (n *Network) World() *sim.World { return n.world }

// SetObserver attaches (or, with nil, detaches) the observability hook
// for the network's own counters. The world's hook is attached
// separately (sim.World.SetObserver); waggle.NewSwarm wires both to the
// same observer.
func (n *Network) SetObserver(o *obs.Observer) { n.obs = o }

// Observer returns the attached observer, or nil.
func (n *Network) Observer() *obs.Observer { return n.obs }

// Endpoint returns robot i's endpoint.
func (n *Network) Endpoint(i int) *protocol.Endpoint { return n.endpoints[i] }

// Send queues a message from one robot to another.
func (n *Network) Send(from, to int, payload []byte) error {
	if from < 0 || from >= len(n.endpoints) {
		return fmt.Errorf("core: sender %d out of range", from)
	}
	if err := n.endpoints[from].Send(to, payload); err != nil {
		return err
	}
	if o := n.obs; o != nil {
		o.Net.Sends.Inc()
		o.Record(obs.Event{T: n.world.Time(), Kind: obs.EvSend, Robot: from, Peer: to, Val: float64(len(payload))})
	}
	return nil
}

// Broadcast queues a message from one robot to every other robot as
// n-1 unicasts.
func (n *Network) Broadcast(from int, payload []byte) error {
	if from < 0 || from >= len(n.endpoints) {
		return fmt.Errorf("core: sender %d out of range", from)
	}
	if err := n.endpoints[from].Broadcast(payload); err != nil {
		return err
	}
	if o := n.obs; o != nil {
		o.Net.Sends.Add(int64(len(n.endpoints) - 1))
		for to := range n.endpoints {
			if to != from {
				o.Record(obs.Event{T: n.world.Time(), Kind: obs.EvSend, Robot: from, Peer: to, Val: float64(len(payload))})
			}
		}
	}
	return nil
}

// SendAll queues one single-transmission broadcast (§1's efficient
// one-to-all).
func (n *Network) SendAll(from int, payload []byte) error {
	if from < 0 || from >= len(n.endpoints) {
		return fmt.Errorf("core: sender %d out of range", from)
	}
	if err := n.endpoints[from].SendAll(payload); err != nil {
		return err
	}
	if o := n.obs; o != nil {
		// One transmission regardless of swarm size: count it once;
		// Peer -1 marks the all-recipients address.
		o.Net.Sends.Inc()
		o.Record(obs.Event{T: n.world.Time(), Kind: obs.EvSend, Robot: from, Peer: -1, Val: float64(len(payload))})
	}
	return nil
}

// Step advances the simulation one instant and collects any deliveries.
func (n *Network) Step() error {
	if _, err := n.world.Step(n.scheduler); err != nil {
		return err
	}
	n.collect()
	return nil
}

// RunUntilDelivered advances the simulation until `count` messages are
// available past the consumption cursor, or the step budget runs out.
// It returns the deliveries — oldest unconsumed first, including any
// that arrived before this call but were never returned (e.g. surplus
// messages that landed in the same step a previous call stopped at) —
// and the number of instants executed.
//
// A zero maxSteps is legal and means "check without stepping": already
// collected, unconsumed deliveries satisfy the call, otherwise it fails
// with ErrNotDelivered after zero instants. In particular
// RunUntilDelivered(0, maxSteps) always succeeds immediately with an
// empty batch and zero instants executed. Negative budgets are rejected
// with a *BudgetError.
func (n *Network) RunUntilDelivered(count, maxSteps int) ([]protocol.Received, int, error) {
	if count < 0 {
		return nil, 0, &BudgetError{Op: "RunUntilDelivered", Param: "count", Value: count}
	}
	if maxSteps < 0 {
		return nil, 0, &BudgetError{Op: "RunUntilDelivered", Param: "maxSteps", Value: maxSteps}
	}
	n.collect()
	for step := 0; step < maxSteps; step++ {
		if len(n.delivered)-n.consumed >= count {
			out, err := n.consume(count)
			return out, step, err
		}
		if err := n.Step(); err != nil {
			return nil, step, err
		}
	}
	if len(n.delivered)-n.consumed >= count {
		out, err := n.consume(count)
		return out, maxSteps, err
	}
	return nil, maxSteps, fmt.Errorf("%w: %d of %d after %d steps",
		ErrNotDelivered, len(n.delivered)-n.consumed, count, maxSteps)
}

// RunUntilQuiet advances the simulation until every endpoint is idle
// (nothing queued or in flight), bounded by maxSteps. It returns every
// message not yet handed out by a previous RunUntil* call — deliveries
// collected before the run started included — plus those delivered
// during the run.
//
// A zero maxSteps means "check without stepping", mirroring
// RunUntilDelivered; a negative budget is rejected with a *BudgetError.
func (n *Network) RunUntilQuiet(maxSteps int) ([]protocol.Received, int, error) {
	if maxSteps < 0 {
		return nil, 0, &BudgetError{Op: "RunUntilQuiet", Param: "maxSteps", Value: maxSteps}
	}
	n.collect()
	for step := 0; step < maxSteps; step++ {
		if n.allIdle() {
			out, err := n.consume(len(n.delivered) - n.consumed)
			return out, step, err
		}
		if err := n.Step(); err != nil {
			return nil, step, err
		}
	}
	if n.allIdle() {
		out, err := n.consume(len(n.delivered) - n.consumed)
		return out, maxSteps, err
	}
	return nil, maxSteps, fmt.Errorf("%w: endpoints still busy after %d steps", ErrNotDelivered, maxSteps)
}

// consume hands out the next `count` deliveries past the cursor and
// advances it. A cursor window past the end of the delivered log —
// possible only if a restore loaded inconsistent state — is reported as
// a *CursorError instead of a slice-bounds panic.
func (n *Network) consume(count int) ([]protocol.Received, error) {
	if n.consumed < 0 || count < 0 || n.consumed+count > len(n.delivered) {
		return nil, &CursorError{Consumed: n.consumed, Delivered: len(n.delivered), Count: count}
	}
	out := make([]protocol.Received, count)
	copy(out, n.delivered[n.consumed:n.consumed+count])
	n.consumed += count
	return out, nil
}

// Delivered returns every message delivered so far, in order.
func (n *Network) Delivered() []protocol.Received {
	n.collect()
	return append([]protocol.Received(nil), n.delivered...)
}

// DeliveredSince returns a copy of the deliveries recorded after the
// first `from` ones, without moving the consumption cursor — an
// observation window for watchers (the self-healing messenger's
// implicit-acknowledgement scan) that must not steal deliveries from
// the application's RunUntil* calls.
func (n *Network) DeliveredSince(from int) []protocol.Received {
	n.collect()
	if from < 0 {
		from = 0
	}
	if from >= len(n.delivered) {
		return nil
	}
	return append([]protocol.Received(nil), n.delivered[from:]...)
}

// CollectedSince returns a copy of the already-collected deliveries
// past the first `from` ones, WITHOUT sweeping the endpoints. Unlike
// DeliveredSince it is safe to call from inside a World.Step hook (the
// movement-stream tap): a sweep there would harvest the step's fresh
// receptions before the post-step collect and stamp their trace events
// one instant early. The cost is that a stream sees each delivery one
// step after the reception, deterministically.
func (n *Network) CollectedSince(from int) []protocol.Received {
	if from < 0 {
		from = 0
	}
	if from >= len(n.delivered) {
		return nil
	}
	return append([]protocol.Received(nil), n.delivered[from:]...)
}

// CollectedCount reports how many deliveries have been collected so
// far, without sweeping the endpoints.
func (n *Network) CollectedCount() int { return len(n.delivered) }

// Scheduler exposes the activation scheduler driving the network's
// steps, for checkpoint capture of its stream state.
func (n *Network) Scheduler() sim.Scheduler { return n.scheduler }

// Consumed returns the consumption cursor: how many delivered messages
// RunUntil* calls have already handed out.
func (n *Network) Consumed() int { return n.consumed }

// RestoreConsumed reinstates a checkpointed consumption cursor. Cursors
// outside [0, len(delivered)] are rejected with a *CursorError so a
// corrupt checkpoint surfaces at restore time, not as a later panic.
func (n *Network) RestoreConsumed(consumed int) error {
	if consumed < 0 || consumed > len(n.delivered) {
		return &CursorError{Consumed: consumed, Delivered: len(n.delivered)}
	}
	n.consumed = consumed
	return nil
}

func (n *Network) allIdle() bool {
	for _, e := range n.endpoints {
		if !e.Idle() {
			return false
		}
	}
	return true
}

func (n *Network) collect() {
	if n.collectedTime == n.world.Time() {
		return
	}
	n.collectedTime = n.world.Time()
	for _, e := range n.endpoints {
		recs := e.Receive()
		if o := n.obs; o != nil && len(recs) > 0 {
			o.Net.Deliveries.Add(int64(len(recs)))
			for _, r := range recs {
				o.Record(obs.Event{T: n.world.Time(), Kind: obs.EvDeliver, Robot: r.To, Peer: r.From, Val: float64(len(r.Payload))})
			}
		}
		n.delivered = append(n.delivered, recs...)
	}
}
