// Package protocol implements the paper's six movement-signal
// communication protocols plus the §5 variants:
//
//	Sync2        two synchronous robots              (§3.1, Fig. 1)
//	SyncN        n synchronous robots, three naming
//	             schemes: observable IDs (§3.2),
//	             lexicographic (§3.3), SEC-relative (§3.4)
//	Async2       two asynchronous robots             (§4.1, Fig. 5)
//	AsyncN       n asynchronous robots               (§4.2, Fig. 6)
//	AsyncBounded the §5 bounded-slice variant: k data
//	             diameters, recipient index sent as
//	             ⌈log_k n⌉ symbols before the payload
//
// Every protocol is a sim.Behavior per robot plus an Endpoint exposing
// Send/Receive to the application. Behaviors work exclusively in their
// robot's local coordinates; all thresholds are expressed as fractions
// of locally-computed lengths (granular radii, initial separations), so
// correctness is invariant under the per-robot rotations, scales and
// (shared-handedness) reflections the model allows.
package protocol

import (
	"math"

	"waggle/internal/geom"
	"waggle/internal/spatial"
)

// Naming selects how an n-robot protocol identifies recipients.
type Naming int

const (
	// NamingIDs uses observable identifiers (§3.2); requires an
	// identified system and sense of direction.
	NamingIDs Naming = iota + 1
	// NamingLex uses the shared lexicographic order (§3.3); requires
	// sense of direction (and chirality); works for anonymous robots.
	NamingLex
	// NamingSEC uses the per-observer relative naming built on the
	// smallest enclosing circle (§3.4); requires chirality only.
	NamingSEC
)

// String implements fmt.Stringer.
func (n Naming) String() string {
	switch n {
	case NamingIDs:
		return "ids"
	case NamingLex:
		return "lex"
	case NamingSEC:
		return "sec"
	default:
		return "naming(?)"
	}
}

// ToAll is the broadcast recipient for Endpoint.SendAll: the §1 remark
// that the protocols "can be easily adapted to implement efficiently
// one-to-many or one-to-all explicit communication". A one-to-all
// message is transmitted ONCE, on the sender's own diameter — which is
// meaningless as a unicast address (a robot never writes to itself) and
// is therefore free to carry broadcast traffic. Every robot decodes all
// movements anyway, so a single transmission reaches the whole swarm.
const ToAll = -1

// Received is one delivered message.
type Received struct {
	// From and To are home indices (positions in the initial
	// configuration P(t0)); for anonymous schemes they are derived
	// geometrically, never from simulator indices.
	From, To int
	// Payload is the message body.
	Payload []byte
}

// sideOf encodes which half of a diameter a movement used: side 0 is the
// paper's "Northern/Eastern" half (bit 0), side 1 the opposite (bit 1).
type sideOf int

// slicer computes and classifies the sliced-granular directions of §3.2,
// §3.4 and §4.2 for one sender, in the coordinates of one observer. It
// is configured with the sender's reference direction (local North for
// sense-of-direction schemes, the SEC horizon direction for the SEC
// scheme) and the diameter count.
type slicer struct {
	ref       geom.Vec // unit reference direction (diameter 0, positive end)
	diameters int
}

// newSlicer builds a slicer; ref must be non-zero.
func newSlicer(ref geom.Vec, diameters int) slicer {
	return slicer{ref: ref.Unit(), diameters: diameters}
}

// direction returns the unit vector of the positive (side-0) end of
// diameter k when side is 0, or the negative end when side is 1.
// Diameters are numbered clockwise from the reference direction, spaced
// pi/diameters apart. "Clockwise" is the fixed local convention; robots
// sharing handedness agree on it (chirality).
func (s slicer) direction(k int, side sideOf) geom.Vec {
	theta := float64(k) * math.Pi / float64(s.diameters)
	if side == 1 {
		theta += math.Pi
	}
	// Clockwise rotation = negative mathematical angle.
	return s.ref.Rotate(-theta)
}

// classify maps an observed displacement to the nearest (diameter, side)
// pair. The displacement must be non-zero.
func (s slicer) classify(d geom.Vec) (k int, side sideOf) {
	// Clockwise angle of d from the reference direction.
	alpha := geom.NormalizeAngle(s.ref.Angle() - d.Angle())
	halfStep := math.Pi / float64(s.diameters)
	m := int(math.Round(alpha/halfStep)) % (2 * s.diameters)
	if m < 0 {
		m += 2 * s.diameters
	}
	k = m % s.diameters
	if m >= s.diameters {
		side = 1
	}
	return k, side
}

// granularRadii returns, per point, half the distance to its nearest
// neighbour — the granular radius of §3.2 (see internal/voronoi for the
// full diagrams; the radius shortcut is exact because the largest disc
// centred on a site inscribed in its Voronoi cell touches the nearest
// bisector). The computation is delegated to the spatial index, which
// is O(n) expected instead of the all-pairs O(n²) and returns values
// bit-identical to the brute-force scan.
func granularRadii(pts []geom.Point) []float64 {
	return spatial.NearestRadii(pts)
}

// quantizeDir snaps a direction to the nearest of res equally-spaced
// directions in the robot's own frame (§5's limited direction
// resolution). res <= 0 means unlimited. Length is preserved.
func quantizeDir(v geom.Vec, res int) geom.Vec {
	if res <= 0 || v.IsZero() {
		return v
	}
	step := 2 * math.Pi / float64(res)
	theta := math.Round(v.Angle()/step) * step
	s, c := math.Sincos(theta)
	return geom.V(c, s).Scale(v.Len())
}

// moveToward returns the next position when moving from cur towards
// target covering at most maxStep, arriving exactly when close enough.
func moveToward(cur, target geom.Point, maxStep float64) geom.Point {
	d := target.Sub(cur)
	if dist := d.Len(); dist > maxStep {
		return cur.Add(d.Scale(maxStep / dist))
	}
	return target
}
