package protocol

import (
	"bytes"
	"math/rand"
	"testing"

	"waggle/internal/encoding"
	"waggle/internal/geom"
	"waggle/internal/sim"
)

func buildBoundedWorld(t *testing.T, positions []geom.Point, frames []geom.Frame, k int, cfg AsyncNConfig) (*sim.World, []*Endpoint) {
	t.Helper()
	n := len(positions)
	behaviors, endpoints, err := NewAsyncBounded(n, k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	robots := make([]*sim.Robot, n)
	for i := range robots {
		robots[i] = &sim.Robot{Frame: frames[i], Sigma: 1e9, Behavior: behaviors[i]}
	}
	w, err := sim.NewWorld(sim.Config{Positions: positions, Robots: robots, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	return w, endpoints
}

func TestBoundedDelivery(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	positions := randomPositions(rng, 9, 6)
	for _, k := range []int{2, 3, 4} {
		frames := frameSet(rng, 9, false, geom.RightHanded)
		w, eps := buildBoundedWorld(t, positions, frames, k, AsyncNConfig{})
		want := []byte{0x37}
		if err := eps[2].Send(7, want); err != nil {
			t.Fatal(err)
		}
		got := runUntilDelivered(t, w, sim.FirstSync{Inner: sim.NewRandomFair(int64(k))}, eps, 1, 2_000_000)
		if got[0].From != 2 || got[0].To != 7 || !bytes.Equal(got[0].Payload, want) {
			t.Errorf("k=%d: received %+v", k, got[0])
		}
	}
}

func TestBoundedSequentialMessagesDifferentRecipients(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	positions := randomPositions(rng, 6, 8)
	frames := frameSet(rng, 6, false, geom.RightHanded)
	w, eps := buildBoundedWorld(t, positions, frames, 2, AsyncNConfig{})
	if err := eps[0].Send(3, []byte("X")); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Send(5, []byte("Y")); err != nil {
		t.Fatal(err)
	}
	got := runUntilDelivered(t, w, sim.FirstSync{Inner: sim.NewRandomFair(5)}, eps, 2, 4_000_000)
	byTo := map[int]string{}
	for _, r := range got {
		byTo[r.To] = string(r.Payload)
	}
	if byTo[3] != "X" || byTo[5] != "Y" {
		t.Errorf("sequential recipients wrong: %v", byTo)
	}
}

// TestBoundedPreludeCost verifies the §5 accounting: the bounded coder
// spends IndexCodeLen(n, k) extra excursions per message compared with
// the direct coder.
func TestBoundedPreludeCost(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	positions := randomPositions(rng, 8, 6)
	msg := []byte("C")
	frameBits := 16 + 8*len(msg)

	countExcursions := func(bounded bool, k int) int {
		frames := frameSet(rng, 8, false, geom.RightHanded)
		var w *sim.World
		var eps []*Endpoint
		if bounded {
			w, eps = buildBoundedWorld(t, positions, frames, k, AsyncNConfig{})
		} else {
			w, eps = buildAsyncNWorld(t, positions, frames, AsyncNConfig{})
		}
		if err := eps[0].Send(6, msg); err != nil {
			t.Fatal(err)
		}
		runUntilDelivered(t, w, sim.FirstSync{Inner: sim.NewRandomFair(7)}, eps, 1, 4_000_000)
		return eps[0].SentBits()
	}

	direct := countExcursions(false, 0)
	if direct != frameBits {
		t.Errorf("direct excursions = %d, want %d", direct, frameBits)
	}
	for _, k := range []int{2, 4} {
		got := countExcursions(true, k)
		want := frameBits + encoding.IndexCodeLen(8, k)
		if got != want {
			t.Errorf("k=%d: excursions = %d, want %d", k, got, want)
		}
	}
}

// TestDirectionResolutionMotivatesBoundedSlices is the §5 round-off
// scenario (experiment C9): with a coarse direction sensor the direct
// protocol misroutes on some channels while the bounded variant, which
// needs only 2(k+2) distinguishable directions, keeps working.
func TestDirectionResolutionMotivatesBoundedSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	n := 16
	positions := randomPositions(rng, n, 6)
	const directions = 16 // far below the 2(n+1)=34 the direct protocol needs

	probe := func(bounded bool, to int, seed int64) bool {
		cfg := AsyncNConfig{DirectionResolution: directions}
		var (
			behaviors []sim.Behavior
			eps       []*Endpoint
			err       error
		)
		if bounded {
			behaviors, eps, err = NewAsyncBounded(n, 2, cfg)
		} else {
			behaviors, eps, err = NewAsyncN(n, cfg)
		}
		if err != nil {
			t.Fatal(err)
		}
		frames := frameSet(rand.New(rand.NewSource(seed)), n, false, geom.RightHanded)
		robots := make([]*sim.Robot, n)
		for i := range robots {
			robots[i] = &sim.Robot{Frame: frames[i], Sigma: 1e9, Behavior: behaviors[i]}
		}
		w, err := sim.NewWorld(sim.Config{Positions: positions, Robots: robots})
		if err != nil {
			t.Fatal(err)
		}
		if err := eps[0].Send(to, []byte{0x77}); err != nil {
			t.Fatal(err)
		}
		delivered := false
		if _, _, err := w.Run(sim.FirstSync{Inner: sim.NewRandomFair(seed)}, 40_000, func(*sim.World) bool {
			for _, r := range eps[to].Receive() {
				if r.From == 0 && len(r.Payload) == 1 && r.Payload[0] == 0x77 {
					delivered = true
				}
			}
			return delivered
		}); err != nil {
			t.Fatal(err)
		}
		return delivered
	}

	directFailures, boundedFailures := 0, 0
	for trial := 0; trial < 5; trial++ {
		to := 1 + trial*3%(n-1)
		if !probe(false, to, int64(trial)) {
			directFailures++
		}
		if !probe(true, to, int64(trial)) {
			boundedFailures++
		}
	}
	if directFailures == 0 {
		t.Error("direct protocol survived a 16-direction sensor on every channel; " +
			"the §5 motivation should bite here")
	}
	if boundedFailures != 0 {
		t.Errorf("bounded variant failed on %d channels despite needing only 8 directions", boundedFailures)
	}
}

func TestNewAsyncBoundedValidation(t *testing.T) {
	if _, _, err := NewAsyncBounded(4, 1, AsyncNConfig{}); err == nil {
		t.Error("base 1 accepted")
	}
	if _, _, err := NewAsyncBounded(1, 2, AsyncNConfig{}); err == nil {
		t.Error("n=1 accepted")
	}
}
