package protocol

import (
	"bytes"
	"math/rand"
	"testing"

	"waggle/internal/geom"
	"waggle/internal/sim"
)

func TestFlockedSwarmStillCommunicates(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	n := 6
	positions := randomPositions(rng, n, 6)
	frames := frameSet(rng, n, false, geom.RightHanded)
	behaviors, eps, err := NewSyncN(n, SyncNConfig{Naming: NamingSEC})
	if err != nil {
		t.Fatal(err)
	}
	flockWorld := geom.V(0.3, 0.2) // agreed world drift per step
	robots := make([]*sim.Robot, n)
	for i := range robots {
		robots[i] = &sim.Robot{
			Frame: frames[i],
			Sigma: 1e9,
			Behavior: &Flocked{
				Inner: behaviors[i],
				Drift: frames[i].VecToLocal(flockWorld),
			},
		}
	}
	w, err := sim.NewWorld(sim.Config{Positions: positions, Robots: robots, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("FLOCK")
	if err := eps[0].Send(4, want); err != nil {
		t.Fatal(err)
	}
	steps, ok, err2 := w.Run(sim.Synchronous{}, 10_000, func(*sim.World) bool {
		got := eps[4].Receive()
		return len(got) > 0 && bytes.Equal(got[0].Payload, want)
	})
	if err2 != nil {
		t.Fatal(err2)
	}
	if !ok {
		t.Fatal("flocking swarm failed to deliver")
	}
	// Every robot drifted by steps * flock vector, modulo its last
	// communication offset (senders bounded inside their granulars).
	for i := 0; i < n; i++ {
		wantPos := positions[i].Add(flockWorld.Scale(float64(steps)))
		drift := w.Position(i).Sub(wantPos).Len()
		maxCommOffset := granularRadii(positions)[i]
		if drift > maxCommOffset+1e-6 {
			t.Errorf("robot %d at %v, want near %v (drift error %v)", i, w.Position(i), wantPos, drift)
		}
	}
	// And the swarm really moved: net displacement must dominate the
	// communication wiggles.
	if w.Position(0).Dist(positions[0]) < 10 {
		t.Error("swarm did not actually flock")
	}
}

func TestFlockedIdleRobotFollowsExactly(t *testing.T) {
	// An idle robot's only movement is the flock drift.
	behaviors, eps, err := NewSyncN(2, SyncNConfig{Naming: NamingLex})
	if err != nil {
		t.Fatal(err)
	}
	_ = eps
	flock := geom.V(1, 0)
	robots := []*sim.Robot{
		{Frame: geom.WorldFrame(), Sigma: 1e9, Behavior: &Flocked{Inner: behaviors[0], Drift: flock}},
		{Frame: geom.WorldFrame(), Sigma: 1e9, Behavior: &Flocked{Inner: behaviors[1], Drift: flock}},
	}
	w, err := sim.NewWorld(sim.Config{
		Positions: []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)},
		Robots:    robots,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := w.Step(sim.Synchronous{}); err != nil {
			t.Fatal(err)
		}
	}
	if !w.Position(0).Eq(geom.Pt(7, 0)) || !w.Position(1).Eq(geom.Pt(17, 0)) {
		t.Errorf("positions %v %v, want (7,0) (17,0)", w.Position(0), w.Position(1))
	}
}
