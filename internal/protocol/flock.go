package protocol

import (
	"waggle/internal/geom"
	"waggle/internal/sim"
)

// Flocked wraps a synchronous communication behavior so the whole swarm
// drifts while chatting — the §5 remark: "the robots may decide to flock
// in a certain direction, subtracting the agreed upon global flocking
// movement in order to preserve the relative movements used for
// communication."
//
// Every robot adds the agreed per-step flock displacement to whatever
// its protocol behavior commands. Under a synchronous scheduler all
// robots accumulate identical drift, so egocentric views — which only
// expose relative positions — are untouched by the flocking and the
// inner protocol runs unmodified. The wrapper is only sound when all
// robots are activated equally often (synchronous schedulers); under
// partial activation the drifts diverge and relative geometry is
// destroyed.
type Flocked struct {
	// Inner is the communication behavior being carried along.
	Inner sim.Behavior
	// Drift is the per-activation flock displacement in this robot's
	// local frame. All robots' vectors must denote the same world
	// displacement (the facade derives them from one world vector).
	Drift geom.Vec
}

var _ sim.Behavior = (*Flocked)(nil)

// Step implements sim.Behavior.
func (f *Flocked) Step(view sim.View) geom.Point {
	dest := f.Inner.Step(view)
	return dest.Add(f.Drift)
}
