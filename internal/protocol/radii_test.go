package protocol

import (
	"fmt"
	"math/rand"
	"testing"

	"waggle/internal/geom"
)

// TestRadiiCacheMatchesDirect pins the RadiiCache contract: across
// epoch-style reinitialisations over a drifting configuration —
// including a static observer (pure incremental), a moved observer
// (every local coordinate shifts, full fallback), coincidence-driven
// zero radii, and a swarm-size change — every call is bit-identical to
// the uncached granularRadii, and the returned slices are independent
// copies.
func TestRadiiCacheMatchesDirect(t *testing.T) {
	for _, n := range []int{2, 16, 300} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(61 + n)))
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = geom.Pt(rng.Float64()*200, rng.Float64()*200)
			}
			var cache RadiiCache
			check := func(stage string) []float64 {
				t.Helper()
				got := cache.Radii(pts)
				want := granularRadii(pts)
				if len(got) != len(want) {
					t.Fatalf("%s: %d radii, want %d", stage, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: radius %d = %v, want %v", stage, i, got[i], want[i])
					}
				}
				return got
			}
			prev := check("initial")
			for epoch := 0; epoch < 12; epoch++ {
				switch epoch % 4 {
				case 0: // few robots drift (static observer: incremental path)
					for m := 0; m < n/10+1; m++ {
						i := rng.Intn(n)
						pts[i] = geom.Pt(pts[i].X+rng.NormFloat64(), pts[i].Y+rng.NormFloat64())
					}
				case 1: // observer moved: every local coordinate translates
					dx, dy := rng.NormFloat64()*5, rng.NormFloat64()*5
					for i := range pts {
						pts[i] = geom.Pt(pts[i].X+dx, pts[i].Y+dy)
					}
				case 2: // coincidence: a zero radius appears
					if n > 1 {
						pts[rng.Intn(n)] = pts[rng.Intn(n)]
					}
				default: // nothing moved at all
				}
				got := check(fmt.Sprintf("epoch %d", epoch))
				// The cache must hand out copies: mutating one epoch's
				// slice must not corrupt the next (swarmGeometry retains
				// its radii for the behavior's lifetime).
				for i := range prev {
					prev[i] = -1
				}
				prev = got
			}
			// A nil cache computes directly.
			var nilCache *RadiiCache
			got := nilCache.Radii(pts)
			want := granularRadii(pts)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("nil cache radius %d = %v, want %v", i, got[i], want[i])
				}
			}
			// Swarm-size change falls back to the full path.
			pts = append(pts, geom.Pt(-10, -10))
			check("grown")
		})
	}
}
