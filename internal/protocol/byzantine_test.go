package protocol

import (
	"bytes"
	"math/rand"
	"testing"

	"waggle/internal/geom"
	"waggle/internal/sim"
)

// crazyWalk is a robot that ignores the protocol entirely and random
// walks inside its granular — movement noise rather than Byzantine
// intent, but from the decoders' perspective the same thing: arbitrary
// excursions that look like signal.
func crazyWalk(rng *rand.Rand, radiusFrac float64) sim.Behavior {
	var offset geom.Vec
	ready := false
	var radius float64
	return sim.BehaviorFunc(func(v sim.View) geom.Point {
		if !ready {
			ready = true
			best := -1.0
			for j, p := range v.Points {
				if j == v.Self {
					continue
				}
				if d := p.Sub(v.Points[v.Self]).Len(); best < 0 || d < best {
					best = d
				}
			}
			radius = best / 2 * radiusFrac
		}
		// Jump to a fresh random point inside the granular.
		theta := rng.Float64() * 2 * 3.141592653589793
		r := rng.Float64() * radius
		target := geom.V(r, 0).Rotate(theta)
		delta := target.Sub(offset)
		offset = target
		return geom.Point{X: delta.X, Y: delta.Y}
	})
}

// TestProtocolsTolerateMovementNoise: one robot moves arbitrarily; the
// channels between protocol-following robots must still deliver
// correctly (each sender's granular is its own channel — noise from one
// robot cannot alter another's movements). Junk decoded "from" the
// noisy robot is acceptable; corruption of the clean channel is not.
func TestProtocolsTolerateMovementNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	n := 5
	positions := randomPositions(rng, n, 8)
	const noisy = 3

	scenarios := []struct {
		name  string
		sync  bool
		sched func() sim.Scheduler
	}{
		{"sync", true, func() sim.Scheduler { return sim.Synchronous{} }},
		{"async", false, func() sim.Scheduler { return sim.FirstSync{Inner: sim.NewRandomFair(5)} }},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			var (
				behaviors []sim.Behavior
				eps       []*Endpoint
				err       error
			)
			if sc.sync {
				behaviors, eps, err = NewSyncN(n, SyncNConfig{Naming: NamingSEC})
			} else {
				behaviors, eps, err = NewAsyncN(n, AsyncNConfig{Naming: NamingSEC})
			}
			if err != nil {
				t.Fatal(err)
			}
			frames := frameSet(rng, n, false, geom.RightHanded)
			robots := make([]*sim.Robot, n)
			for i := range robots {
				b := behaviors[i]
				if i == noisy {
					b = crazyWalk(rand.New(rand.NewSource(9)), 0.9)
				}
				robots[i] = &sim.Robot{Frame: frames[i], Sigma: 1e9, Behavior: b}
			}
			w, err := sim.NewWorld(sim.Config{Positions: positions, Robots: robots})
			if err != nil {
				t.Fatal(err)
			}
			want := []byte("CLEAN")
			if err := eps[0].Send(2, want); err != nil {
				t.Fatal(err)
			}
			var clean []Received
			sawJunk := false
			_, ok, err := w.Run(sc.sched(), 2_000_000, func(*sim.World) bool {
				for _, r := range eps[2].Receive() {
					if r.From == noisy {
						sawJunk = true // expected: the noisy robot "says" garbage
						continue
					}
					clean = append(clean, r)
				}
				return len(clean) > 0
			})
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatal("clean channel starved by movement noise")
			}
			if clean[0].From != 0 || clean[0].To != 2 || !bytes.Equal(clean[0].Payload, want) {
				t.Errorf("clean channel corrupted: %+v", clean[0])
			}
			_ = sawJunk // junk may or may not frame-align; either is fine
		})
	}
}
