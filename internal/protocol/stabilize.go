package protocol

import (
	"fmt"

	"waggle/internal/geom"
	"waggle/internal/sim"
)

// Stabilizing implements the paper's §5 stabilization sketch for the
// synchronous setting: "assuming a global clock ... returning to the
// initial location and (re)computing the preprocessing phase every
// round timestamp". Every Epoch instants the wrapper discards the
// inner protocol behavior and builds a fresh one, which re-runs the
// whole preprocessing (granulars, naming) from the configuration it
// then observes. Any transient fault — corrupted robot memory, a robot
// forcibly displaced (sim.World.Teleport) — is therefore flushed within
// one epoch: the current positions simply become the new homes for
// every robot simultaneously.
//
// In-flight transmissions at an epoch boundary are lost (their partial
// frames are dropped on both sides); applications re-send. Queued but
// unstarted messages survive, because the outbox lives on the Endpoint,
// not in the discarded behavior.
//
// Epoch boundaries are instants of the global clock (view.Time), the
// clock the paper's sketch assumes: every robot re-initialises on its
// first activation inside each epoch window, whether or not it was
// activated at the boundary itself. A robot that misses activations —
// an adversarial scheduler, or a crash-stop fault that later recovers
// (internal/fault) — therefore resynchronises with the swarm at the
// next boundary instead of drifting onto a private epoch phase, which
// a per-robot activation counter would suffer. The wrapper is only
// sound under synchronous schedulers — exactly the setting in which the
// paper deems stabilization achievable (the asynchronous case is left
// open there, and here).
type Stabilizing struct {
	// Make builds a fresh inner behavior bound to the robot's endpoint.
	Make func() sim.Behavior
	// Epoch is the re-initialisation period in global-clock instants
	// (> 0).
	Epoch int

	inner   sim.Behavior
	epochAt int // epoch index the current inner behavior was built in
}

var _ sim.Behavior = (*Stabilizing)(nil)

// Step implements sim.Behavior.
func (s *Stabilizing) Step(view sim.View) geom.Point {
	ep := 0
	if s.Epoch > 0 {
		ep = view.Time / s.Epoch
	}
	if s.inner == nil || ep != s.epochAt {
		s.inner = s.Make()
		s.epochAt = ep
	}
	return s.inner.Step(view)
}

// NewStabilizingSyncN builds the n-robot synchronous protocol with
// epoch-based self-stabilization: behaviors discard and recompute all
// protocol state every epoch instants. epoch must comfortably exceed
// the longest transmission (2 instants per frame bit) or messages can
// never complete within an epoch.
func NewStabilizingSyncN(n, epoch int, cfg SyncNConfig) ([]sim.Behavior, []*Endpoint, error) {
	if epoch <= 0 {
		return nil, nil, fmt.Errorf("protocol: epoch %d must be positive", epoch)
	}
	cfg, err := normalizeSyncNConfig(n, cfg)
	if err != nil {
		return nil, nil, err
	}
	endpoints := make([]*Endpoint, n)
	behaviors := make([]sim.Behavior, n)
	for i := 0; i < n; i++ {
		endpoints[i] = newEndpoint(i, n)
		endpoint := endpoints[i]
		var sigma float64
		if i < len(cfg.SigmaLocal) {
			sigma = cfg.SigmaLocal[i]
		}
		behaviors[i] = &Stabilizing{
			Epoch: epoch,
			Make: func() sim.Behavior {
				return &syncNRobot{cfg: cfg, endpoint: endpoint, sigma: sigma}
			},
		}
	}
	return behaviors, endpoints, nil
}
