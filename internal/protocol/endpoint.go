package protocol

import (
	"errors"
	"fmt"

	"waggle/internal/encoding"
)

// ErrSelfSend is returned when a robot addresses a message to itself.
var ErrSelfSend = errors.New("protocol: cannot send to self")

// queuedMessage is an outbound message awaiting transmission.
type queuedMessage struct {
	to      int
	payload []byte
}

// Endpoint is the application-facing mailbox of one robot. The
// simulation is single-goroutine (the SSM model is sequential), so
// Endpoint performs no locking; Send must not be called concurrently
// with World.Step.
type Endpoint struct {
	self      int
	n         int
	outbox    []queuedMessage
	inbox     []Received
	overheard []Received
	sentBits  int
	inflight  bool

	// radii caches the granular-radii preprocessing across the behavior
	// re-initialisations of this robot (see RadiiCache): the endpoint
	// outlives the per-epoch behaviors Stabilizing discards.
	radii RadiiCache
}

// radiiCache returns the endpoint's granular-radii cache; nil endpoints
// (tests building geometry directly) compute uncached.
func (e *Endpoint) radiiCache() *RadiiCache {
	if e == nil {
		return nil
	}
	return &e.radii
}

// newEndpoint creates the endpoint of robot self in an n-robot system.
func newEndpoint(self, n int) *Endpoint {
	return &Endpoint{self: self, n: n}
}

// Self returns the robot's home index.
func (e *Endpoint) Self() int { return e.self }

// Send queues a message for the robot with home index to.
func (e *Endpoint) Send(to int, payload []byte) error {
	if to == e.self {
		return ErrSelfSend
	}
	if to < 0 || to >= e.n {
		return fmt.Errorf("protocol: recipient %d out of range [0,%d)", to, e.n)
	}
	if len(payload) > encoding.MaxMessageLen {
		return encoding.ErrMessageTooLong
	}
	msg := make([]byte, len(payload))
	copy(msg, payload)
	e.outbox = append(e.outbox, queuedMessage{to: to, payload: msg})
	return nil
}

// SendAll queues one broadcast transmission: the message goes out once
// on the sender's own diameter and every robot delivers it (the §1
// efficient one-to-all). Cost: one frame, versus n-1 frames for
// Broadcast. Supported by the n-robot protocols; the two-robot
// protocols treat it as a unicast to the peer.
func (e *Endpoint) SendAll(payload []byte) error {
	if len(payload) > encoding.MaxMessageLen {
		return encoding.ErrMessageTooLong
	}
	msg := make([]byte, len(payload))
	copy(msg, payload)
	e.outbox = append(e.outbox, queuedMessage{to: ToAll, payload: msg})
	return nil
}

// Broadcast queues the same message for every other robot as n-1
// unicasts. SendAll achieves the same delivery with a single
// transmission; Broadcast remains for recipient-specific payloads and
// for measuring the §1 efficiency gap (experiment C11).
func (e *Endpoint) Broadcast(payload []byte) error {
	for to := 0; to < e.n; to++ {
		if to == e.self {
			continue
		}
		if err := e.Send(to, payload); err != nil {
			return err
		}
	}
	return nil
}

// Receive drains and returns the messages addressed to this robot, in
// delivery order.
func (e *Endpoint) Receive() []Received {
	out := e.inbox
	e.inbox = nil
	return out
}

// Overheard drains and returns the messages this robot decoded that were
// addressed to other robots. Every robot observes every movement, so
// every robot can reconstruct all traffic — the fault-tolerance
// redundancy remarked in §3.4.
func (e *Endpoint) Overheard() []Received {
	out := e.overheard
	e.overheard = nil
	return out
}

// Idle reports whether the endpoint has nothing queued and nothing in
// flight.
func (e *Endpoint) Idle() bool { return len(e.outbox) == 0 && !e.inflight }

// PendingMessages returns how many messages are queued (excluding any
// partially-transmitted one).
func (e *Endpoint) PendingMessages() int { return len(e.outbox) }

// SentBits returns how many bits (or symbols, for level coding) the
// robot has transmitted — the step-cost metric of the experiments.
func (e *Endpoint) SentBits() int { return e.sentBits }

// pop dequeues the next outbound message.
func (e *Endpoint) pop() (queuedMessage, bool) {
	if len(e.outbox) == 0 {
		return queuedMessage{}, false
	}
	m := e.outbox[0]
	e.outbox = e.outbox[1:]
	return m, true
}

// deliver routes a decoded message into the inbox or the overheard log.
func (e *Endpoint) deliver(r Received) {
	if r.To == e.self {
		e.inbox = append(e.inbox, r)
	} else {
		e.overheard = append(e.overheard, r)
	}
}
