package protocol

import (
	"bytes"
	"math/rand"
	"testing"

	"waggle/internal/geom"
	"waggle/internal/sim"
)

func buildStabilizingWorld(t *testing.T, positions []geom.Point, frames []geom.Frame, epoch int, cfg SyncNConfig) (*sim.World, []*Endpoint) {
	t.Helper()
	n := len(positions)
	if cfg.Naming == 0 {
		cfg.Naming = NamingSEC
	}
	behaviors, endpoints, err := NewStabilizingSyncN(n, epoch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	robots := make([]*sim.Robot, n)
	for i := range robots {
		robots[i] = &sim.Robot{Frame: frames[i], Sigma: 1e9, Behavior: behaviors[i]}
	}
	w, err := sim.NewWorld(sim.Config{Positions: positions, Robots: robots, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	return w, endpoints
}

func TestStabilizingDeliversNormally(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	positions := randomPositions(rng, 5, 8)
	frames := frameSet(rng, 5, false, geom.RightHanded)
	w, eps := buildStabilizingWorld(t, positions, frames, 400, SyncNConfig{})
	want := []byte("EPOCH")
	if err := eps[0].Send(3, want); err != nil {
		t.Fatal(err)
	}
	got := runUntilDelivered(t, w, sim.Synchronous{}, eps, 1, 10_000)
	if got[0].From != 0 || got[0].To != 3 || !bytes.Equal(got[0].Payload, want) {
		t.Errorf("received %+v", got[0])
	}
}

// TestStabilizingRecoversFromTeleport is the §5 stabilization
// experiment: a transient fault (a robot forcibly displaced) corrupts
// the swarm's shared geometry; without stabilization communication is
// broken forever, with stabilization it recovers within one epoch.
func TestStabilizingRecoversFromTeleport(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	positions := randomPositions(rng, 4, 10)
	frames := frameSet(rng, 4, false, geom.RightHanded)

	const epoch = 300
	runScenario := func(stabilize bool) bool {
		var (
			w   *sim.World
			eps []*Endpoint
		)
		// A small excursion amplitude makes the injected displacement
		// dominate every signal, so the un-recovered swarm cannot
		// accidentally classify through the fault.
		cfg := SyncNConfig{Naming: NamingSEC, AmplitudeFrac: 0.3}
		if stabilize {
			w, eps = buildStabilizingWorld(t, positions, frames, epoch, cfg)
		} else {
			w, eps = buildSyncNWorld(t, positions, frames, cfg)
		}
		// Let the swarm run a little, then inject the fault: the future
		// receiver is displaced by a third of its granular radius — not
		// enough to collide, plenty to desynchronise dead reckoning and
		// home bookkeeping.
		for i := 0; i < 10; i++ {
			if _, err := w.Step(sim.Synchronous{}); err != nil {
				t.Fatal(err)
			}
		}
		// The displacement stays inside the granular (no collision) but
		// dominates every communication amplitude, so the un-recovered
		// swarm misclassifies all subsequent movements.
		radius := granularRadii(positions)[2]
		delta := geom.V(3, 2).Unit().Scale(0.95 * radius)
		if err := w.Teleport(2, w.Position(2).Add(delta)); err != nil {
			t.Fatal(err)
		}
		// After (at most) one epoch boundary, try to communicate with the
		// displaced robot.
		for i := 0; i < epoch+10; i++ {
			if _, err := w.Step(sim.Synchronous{}); err != nil {
				t.Fatal(err)
			}
		}
		// Discard anything decoded during the corrupted window; the
		// verdict is about FRESH traffic only.
		eps[2].Receive()
		eps[2].Overheard()
		if err := eps[0].Send(2, []byte("POST-FAULT")); err != nil {
			t.Fatal(err)
		}
		delivered, garbage := false, false
		_, _, err := w.Run(sim.Synchronous{}, 5_000, func(*sim.World) bool {
			for _, r := range eps[2].Receive() {
				if bytes.Equal(r.Payload, []byte("POST-FAULT")) {
					delivered = true
				} else {
					garbage = true
				}
			}
			return delivered
		})
		if err != nil {
			t.Fatal(err)
		}
		// Healthy communication means the message arrived AND the
		// displaced robot is not hallucinating traffic from its stale
		// geometry.
		return delivered && !garbage
	}

	if runScenario(false) {
		t.Error("control: plain SyncN communicated cleanly despite the unrecovered fault " +
			"(the fault injection is too weak to be meaningful)")
	}
	if !runScenario(true) {
		t.Error("stabilizing SyncN failed to recover after the epoch boundary")
	}
}

func TestStabilizingEpochBoundaryDropsInFlight(t *testing.T) {
	// A message whose transmission crosses the epoch boundary is lost —
	// documented behaviour; the application re-sends.
	rng := rand.New(rand.NewSource(95))
	positions := randomPositions(rng, 3, 8)
	frames := frameSet(rng, 3, false, geom.RightHanded)
	w, eps := buildStabilizingWorld(t, positions, frames, 20, SyncNConfig{}) // < 48-step frame
	if err := eps[0].Send(1, []byte("X")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2_000; i++ {
		if _, err := w.Step(sim.Synchronous{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := eps[1].Receive(); len(got) != 0 {
		t.Errorf("message crossing every epoch boundary was delivered: %v", got)
	}
}

func TestNewStabilizingSyncNValidation(t *testing.T) {
	if _, _, err := NewStabilizingSyncN(3, 0, SyncNConfig{}); err == nil {
		t.Error("epoch 0 accepted")
	}
	if _, _, err := NewStabilizingSyncN(1, 100, SyncNConfig{}); err == nil {
		t.Error("n=1 accepted")
	}
}
