package protocol

import (
	"fmt"

	"waggle/internal/encoding"
	"waggle/internal/geom"
	"waggle/internal/sim"
)

// Async2Drift selects what a robot does on the horizon line between
// bits.
type Async2Drift int

const (
	// DriftAway is the paper's base Protocol Async2: always move away
	// from the other robot, so the pair drifts apart forever (the
	// drawback discussed at the end of §4.1).
	DriftAway Async2Drift = iota + 1
	// DriftAlternate is the §4.1 variant: alternate the direction on H
	// between waiting phases so the robots neither separate unboundedly
	// nor collide. The robot confines itself to a corridor on H
	// extending away from the peer; within one waiting phase the
	// direction stays constant (Lemma 4.1's hypothesis) and steps decay
	// geometrically near the corridor boundary — the paper's
	// "divide the covered distance by x > 1" trick, whose
	// infinitesimally-small-movement drawback experiment C6 measures.
	DriftAlternate
)

// Async2Config configures the two-robot asynchronous protocol of §4.1.
type Async2Config struct {
	// Drift selects the on-horizon behavior (default DriftAway).
	Drift Async2Drift
	// StepFrac is the basic movement quantum as a fraction of the
	// initial separation (default 0.05).
	StepFrac float64
	// StepDivisor is the x > 1 of §4.1's alternating variant: near the
	// corridor boundary each move covers the remaining distance divided
	// by StepDivisor, so the boundary is approached but never reached
	// (default 2). Ignored under DriftAway.
	StepDivisor float64
	// CorridorFrac is the length of the alternating variant's corridor
	// on H, as a fraction of the initial separation (default 0.25).
	CorridorFrac float64
	// SigmaLocal bounds each robot's per-activation move in its own
	// frame units (0 = effectively unbounded).
	SigmaLocal [2]float64
}

// async2Phase is the sender-side state machine.
type async2Phase int

const (
	// phaseHorizon: moving on H (probing / separating); allowed to start
	// an excursion once the peer has been seen to change twice.
	phaseHorizon async2Phase = iota + 1
	// phaseOut: moving perpendicular to H, transmitting a bit, waiting
	// for the implicit acknowledgement.
	phaseOut
	// phaseReturn: moving back to the departure point on H.
	phaseReturn
)

const defaultAsync2StepFrac = 0.05

// NewAsync2 builds the behaviors and endpoints of Protocol Async2. The
// two robots may run under any fair scheduler; the first instant must
// activate both robots (the paper's "all robots awake at t0" — wrap the
// scheduler in sim.FirstSync).
func NewAsync2(cfg Async2Config) ([]sim.Behavior, []*Endpoint, error) {
	if cfg.Drift == 0 {
		cfg.Drift = DriftAway
	}
	if cfg.StepFrac == 0 {
		cfg.StepFrac = defaultAsync2StepFrac
	}
	if cfg.StepFrac <= 0 || cfg.StepFrac >= 0.5 {
		return nil, nil, fmt.Errorf("protocol: step fraction %v outside (0, 0.5)", cfg.StepFrac)
	}
	if cfg.StepDivisor == 0 {
		cfg.StepDivisor = 2
	}
	if cfg.Drift == DriftAlternate && cfg.StepDivisor <= 1 {
		return nil, nil, fmt.Errorf("protocol: step divisor %v must exceed 1", cfg.StepDivisor)
	}
	if cfg.CorridorFrac == 0 {
		cfg.CorridorFrac = 0.25
	}
	if cfg.CorridorFrac <= 0 || cfg.CorridorFrac >= 0.5 {
		return nil, nil, fmt.Errorf("protocol: corridor fraction %v outside (0, 0.5)", cfg.CorridorFrac)
	}
	endpoints := []*Endpoint{newEndpoint(0, 2), newEndpoint(1, 2)}
	behaviors := make([]sim.Behavior, 2)
	for i := 0; i < 2; i++ {
		behaviors[i] = &async2Robot{
			cfg:      cfg,
			endpoint: endpoints[i],
			sigma:    cfg.SigmaLocal[i],
		}
	}
	return behaviors, endpoints, nil
}

// async2Robot is one robot of Protocol Async2. Between bits it moves
// along the horizon line H (the line through the two initial positions);
// to send a bit it departs perpendicular to H — East of its own North
// for 0, West for 1 — keeps going until it has seen the peer's position
// change twice (Lemma 4.1 then guarantees the peer saw the excursion),
// returns to H, and separates along H until the peer changed twice again
// so consecutive equal bits stay distinguishable.
type async2Robot struct {
	cfg      Async2Config
	endpoint *Endpoint
	sigma    float64

	rk    reckoner
	north geom.Vec // unit: away from the peer's initial position
	east  geom.Vec // unit: north rotated -90° (chirality-shared right)
	step  float64  // current movement quantum (local units)
	tol   float64  // movement-detection tolerance

	peerHome geom.Point // init-local
	peerLast geom.Point // last observed peer position (init-local)
	peerSeen bool
	changes  int // peer position changes observed since last reset

	phase      async2Phase
	handshaken bool    // peer observed to change twice at least once
	outSign    float64 // +1 east, -1 west for the current excursion
	foot       geom.Point
	horizonDir float64 // +1 away / current drift sign on H
	corridor   float64 // DriftAlternate: corridor length on H (local units)

	tx *txQueueBits

	// Decoder state.
	rx        *encoding.FrameDecoder
	rxWasOn   bool
	peerNorth geom.Vec
	peerEast  geom.Vec
}

var _ sim.Behavior = (*async2Robot)(nil)

// txQueueBits streams the frame bits of queued messages.
type txQueueBits struct {
	endpoint *Endpoint
	bits     []bool
}

// next pops the next bit, refilling from the endpoint's outbox.
func (q *txQueueBits) next() (bool, bool) {
	for len(q.bits) == 0 {
		msg, ok := q.endpoint.pop()
		if !ok {
			q.endpoint.inflight = false
			return false, false
		}
		frame, err := encoding.EncodeFrame(msg.payload)
		if err != nil {
			continue
		}
		q.bits = frame
		q.endpoint.inflight = true
	}
	b := q.bits[0]
	q.bits = q.bits[1:]
	return b, true
}

// Step implements sim.Behavior.
func (r *async2Robot) Step(view sim.View) geom.Point {
	if !r.rk.initialized() {
		r.initFrom(view)
	}
	r.observePeer(view)
	r.decode(view)

	switch r.phase {
	case phaseOut:
		if r.changes >= 2 {
			// Implicit acknowledgement received: the peer has observed
			// this excursion (Lemma 4.1), so a drained queue means the
			// message arrived. Come back to H.
			if len(r.tx.bits) == 0 && r.endpoint.PendingMessages() == 0 {
				r.endpoint.inflight = false
			}
			r.phase = phaseReturn
			return r.stepReturn()
		}
		return r.outMove()
	case phaseReturn:
		return r.stepReturn()
	default:
		return r.stepHorizon()
	}
}

func (r *async2Robot) initFrom(view sim.View) {
	r.rk.init()
	r.peerHome = view.Points[view.Other()]
	toPeer := r.peerHome.Sub(geom.Point{})
	r.north = toPeer.Neg().Unit()
	r.east = r.north.Rotate(-halfPi)
	sep := toPeer.Len()
	r.step = r.cfg.StepFrac * sep
	if r.sigma > 0 && r.step > r.sigma {
		r.step = r.sigma
	}
	r.corridor = r.cfg.CorridorFrac * sep
	r.tol = 1e-9 * sep
	r.phase = phaseHorizon
	r.horizonDir = 1
	r.tx = &txQueueBits{endpoint: r.endpoint}
	r.rx = encoding.NewFrameDecoder()
	r.rxWasOn = true
	// The peer's axes, for decoding its excursions: its North is the
	// opposite of ours; its East is its North rotated -90° in the shared
	// chirality.
	r.peerNorth = r.north.Neg()
	r.peerEast = r.peerNorth.Rotate(-halfPi)
}

// observePeer updates the peer-change counter (the Lemma 4.1 predicate).
func (r *async2Robot) observePeer(view sim.View) {
	cur := r.rk.toInit(view.Points[view.Other()])
	if !r.peerSeen {
		r.peerSeen = true
		r.peerLast = cur
		return
	}
	if cur.Dist(r.peerLast) > r.tol {
		r.changes++
		r.peerLast = cur
	}
}

// resetChanges starts a new waiting phase: the change baseline becomes
// the peer position observed at this activation.
func (r *async2Robot) resetChanges() { r.changes = 0 }

// stepHorizon moves along H and starts excursions once allowed.
func (r *async2Robot) stepHorizon() geom.Point {
	if r.changes >= 2 {
		r.handshaken = true
	}
	if r.handshaken && r.changes >= 2 {
		if bit, ok := r.tx.next(); ok {
			// Depart perpendicular to H.
			r.outSign = 1
			if bit {
				r.outSign = -1
			}
			r.foot = r.rk.selfInit()
			r.phase = phaseOut
			r.resetChanges()
			r.endpoint.sentBits++
			return r.outMove()
		}
	}
	// Keep moving on H. Remark 4.3: an active robot always moves.
	if r.cfg.Drift == DriftAlternate {
		if r.handshaken && r.changes >= 2 {
			// A waiting phase completed with nothing to send: flip the
			// drift direction for the next phase.
			r.horizonDir = -r.horizonDir
			r.resetChanges()
		}
		return r.rk.moveBy(r.north.Scale(r.horizonDir * r.corridorStep()))
	}
	return r.rk.moveBy(r.north.Scale(r.horizonDir * r.step))
}

// corridorStep returns the next on-H move length under DriftAlternate:
// the full quantum while far from the corridor boundary, then the
// remaining distance divided by StepDivisor so the boundary is never
// reached while the direction stays constant.
func (r *async2Robot) corridorStep() float64 {
	axial := geom.V(r.rk.selfInit().X, r.rk.selfInit().Y).Dot(r.north)
	remaining := r.corridor - axial
	if r.horizonDir < 0 {
		remaining = axial
	}
	if remaining <= 0 {
		return 0 // defensive: outside the corridor, stand still this turn
	}
	decayed := remaining / r.cfg.StepDivisor
	if decayed < r.step {
		return decayed
	}
	return r.step
}

// outMove continues the perpendicular excursion (same direction every
// activation, as Lemma 4.1 requires).
func (r *async2Robot) outMove() geom.Point {
	return r.rk.moveBy(r.east.Scale(r.outSign * r.step))
}

// stepReturn moves back towards the departure foot, re-entering the
// horizon phase upon arrival.
func (r *async2Robot) stepReturn() geom.Point {
	self := r.rk.selfInit()
	maxStep := r.step
	if r.sigma > 0 && r.sigma < maxStep {
		maxStep = r.sigma
	}
	next := moveToward(self, r.foot, maxStep)
	if next.Eq(r.foot) {
		r.phase = phaseHorizon
		r.resetChanges()
	}
	return r.rk.moveBy(next.Sub(self))
}

// decode watches the peer's perpendicular offset from H and emits a bit
// at every on-H -> off-H transition.
func (r *async2Robot) decode(view sim.View) {
	peer := r.rk.toInit(view.Points[view.Other()])
	// H passes through both initial positions with direction north; the
	// peer's perpendicular offset is the east-component of its
	// displacement from its own home.
	d := peer.Sub(r.peerHome)
	e := d.Dot(r.peerEast)
	onH := !(e > r.offTol() || e < -r.offTol())
	if onH {
		r.rxWasOn = true
		return
	}
	if !r.rxWasOn {
		return // still the same excursion
	}
	r.rxWasOn = false
	bit := e < 0 // peer moved to ITS west => bit 1
	if msg, done := r.rx.Push(bit); done {
		r.endpoint.deliver(Received{From: view.Other(), To: view.Self, Payload: msg})
	}
}

// offTol is the off-horizon classification threshold: a small multiple
// of the movement-detection tolerance — safely below the perpendicular
// reach of any excursion (movements in the simulation are exact), safely
// above accumulated float noise.
func (r *async2Robot) offTol() float64 {
	return 10 * r.tol
}
