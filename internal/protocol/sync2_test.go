package protocol

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"waggle/internal/geom"
	"waggle/internal/sim"
)

// buildSync2World wires two robots with arbitrary (shared-handedness)
// frames at the given separation.
func buildSync2World(t *testing.T, cfg Sync2Config, frames [2]geom.Frame, sep float64) (*sim.World, []*Endpoint) {
	t.Helper()
	behaviors, endpoints, err := NewSync2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	robots := make([]*sim.Robot, 2)
	for i := range robots {
		sigma := cfg.SigmaLocal[i]
		if sigma <= 0 {
			sigma = 1e9
		}
		robots[i] = &sim.Robot{
			Frame:    frames[i],
			Sigma:    sigma * frames[i].Scale, // sigma is configured in local units
			Behavior: behaviors[i],
		}
	}
	w, err := sim.NewWorld(sim.Config{
		Positions:   []geom.Point{geom.Pt(0, 0), geom.Pt(sep, 0)},
		Robots:      robots,
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, endpoints
}

func worldFrames() [2]geom.Frame {
	return [2]geom.Frame{geom.WorldFrame(), geom.WorldFrame()}
}

// randomFrames returns two frames with random rotation and scale but the
// same handedness — the §3.1 capability set (chirality only).
func randomFrames(rng *rand.Rand, hand geom.Handedness) [2]geom.Frame {
	var out [2]geom.Frame
	for i := range out {
		out[i] = geom.NewFrame(geom.Point{}, rng.Float64()*2*math.Pi, 0.1+rng.Float64()*5, hand)
	}
	return out
}

func runUntilDelivered(t *testing.T, w *sim.World, s sim.Scheduler, eps []*Endpoint, wantCount int, maxSteps int) []Received {
	t.Helper()
	var got []Received
	_, ok, err := w.Run(s, maxSteps, func(*sim.World) bool {
		for _, e := range eps {
			got = append(got, e.Receive()...)
		}
		return len(got) >= wantCount
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("only %d of %d messages delivered in %d steps", len(got), wantCount, maxSteps)
	}
	return got
}

func TestSync2DeliversOneMessage(t *testing.T) {
	w, eps := buildSync2World(t, Sync2Config{}, worldFrames(), 10)
	want := []byte("HELLO")
	if err := eps[0].Send(1, want); err != nil {
		t.Fatal(err)
	}
	got := runUntilDelivered(t, w, sim.Synchronous{}, eps, 1, 10_000)
	if got[0].From != 0 || got[0].To != 1 || !bytes.Equal(got[0].Payload, want) {
		t.Errorf("received %+v, want HELLO from 0 to 1", got[0])
	}
}

func TestSync2FullDuplex(t *testing.T) {
	w, eps := buildSync2World(t, Sync2Config{}, worldFrames(), 10)
	if err := eps[0].Send(1, []byte("PING")); err != nil {
		t.Fatal(err)
	}
	if err := eps[1].Send(0, []byte("PONG")); err != nil {
		t.Fatal(err)
	}
	got := runUntilDelivered(t, w, sim.Synchronous{}, eps, 2, 10_000)
	byTo := map[int][]byte{}
	for _, r := range got {
		byTo[r.To] = r.Payload
	}
	if !bytes.Equal(byTo[1], []byte("PING")) || !bytes.Equal(byTo[0], []byte("PONG")) {
		t.Errorf("full duplex exchange wrong: %v", byTo)
	}
}

func TestSync2MultipleMessagesBackToBack(t *testing.T) {
	w, eps := buildSync2World(t, Sync2Config{}, worldFrames(), 10)
	msgs := [][]byte{[]byte("A"), []byte("BB"), []byte("CCC"), {}}
	for _, m := range msgs {
		if err := eps[0].Send(1, m); err != nil {
			t.Fatal(err)
		}
	}
	got := runUntilDelivered(t, w, sim.Synchronous{}, eps, len(msgs), 20_000)
	for i, m := range msgs {
		if !bytes.Equal(got[i].Payload, m) {
			t.Errorf("message %d = %q, want %q", i, got[i].Payload, m)
		}
	}
}

// The protocol must work when the two robots have arbitrary private
// rotations and scales, as long as they share handedness (chirality).
func TestSync2UnderArbitraryFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		for _, hand := range []geom.Handedness{geom.RightHanded, geom.LeftHanded} {
			w, eps := buildSync2World(t, Sync2Config{}, randomFrames(rng, hand), 5+rng.Float64()*50)
			want := []byte{byte(trial), 0xA5, 0x00, 0xFF}
			if err := eps[1].Send(0, want); err != nil {
				t.Fatal(err)
			}
			got := runUntilDelivered(t, w, sim.Synchronous{}, eps, 1, 10_000)
			if !bytes.Equal(got[0].Payload, want) {
				t.Fatalf("trial %d hand %v: got %v, want %v", trial, hand, got[0].Payload, want)
			}
		}
	}
}

// Mismatched handedness must break decoding: chirality is a REQUIRED
// assumption, and this test demonstrates the protocol actually depends
// on it (bits invert).
func TestSync2MismatchedHandednessCorruptsBits(t *testing.T) {
	frames := [2]geom.Frame{
		geom.NewFrame(geom.Point{}, 0, 1, geom.RightHanded),
		geom.NewFrame(geom.Point{}, 0, 1, geom.LeftHanded),
	}
	w, eps := buildSync2World(t, Sync2Config{}, frames, 10)
	want := []byte{0x0F}
	if err := eps[0].Send(1, want); err != nil {
		t.Fatal(err)
	}
	var got []Received
	_, _, err := w.Run(sim.Synchronous{}, 2_000, func(*sim.World) bool {
		got = append(got, eps[1].Receive()...)
		return len(got) > 0
	})
	if err != nil {
		t.Fatal(err)
	}
	// With inverted chirality every bit flips: either framing never
	// completes or the payload is wrong.
	if len(got) > 0 && bytes.Equal(got[0].Payload, want) {
		t.Error("message decoded correctly despite mismatched handedness")
	}
}

func TestSync2LevelsSpeedup(t *testing.T) {
	msg := bytes.Repeat([]byte{0xC3}, 16)
	stepsFor := func(levels int) int {
		w, eps := buildSync2World(t, Sync2Config{Levels: levels}, worldFrames(), 10)
		if err := eps[0].Send(1, msg); err != nil {
			t.Fatal(err)
		}
		steps, ok, err := w.Run(sim.Synchronous{}, 10_000, func(*sim.World) bool {
			return len(eps[1].Receive()) > 0
		})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("levels=%d: not delivered", levels)
		}
		return steps
	}
	s2 := stepsFor(2)
	s16 := stepsFor(16)
	if s16 >= s2 {
		t.Errorf("16-level coding (%d steps) not faster than binary (%d steps)", s16, s2)
	}
	// 16 levels carry 4 bits per excursion: expect roughly a 4x speedup.
	ratio := float64(s2) / float64(s16)
	if ratio < 3 || ratio > 5 {
		t.Errorf("speedup ratio = %.2f, want about 4", ratio)
	}
}

func TestSync2Silent(t *testing.T) {
	// A robot with no message to send must not move (§5, silence).
	w, eps := buildSync2World(t, Sync2Config{}, worldFrames(), 10)
	if err := eps[0].Send(1, []byte("X")); err != nil {
		t.Fatal(err)
	}
	runUntilDelivered(t, w, sim.Synchronous{}, eps, 1, 10_000)
	if d := w.Trace().TotalDistance(1); d > 1e-9 {
		t.Errorf("idle robot moved %v", d)
	}
	if d := w.Trace().TotalDistance(0); d == 0 {
		t.Error("sender never moved")
	}
}

func TestSync2SentBitsAccounting(t *testing.T) {
	w, eps := buildSync2World(t, Sync2Config{}, worldFrames(), 10)
	msg := []byte("AB") // frame = 16 header + 16 payload bits
	if err := eps[0].Send(1, msg); err != nil {
		t.Fatal(err)
	}
	runUntilDelivered(t, w, sim.Synchronous{}, eps, 1, 10_000)
	if got := eps[0].SentBits(); got != 32 {
		t.Errorf("SentBits = %d, want 32", got)
	}
	if got := eps[1].SentBits(); got != 0 {
		t.Errorf("idle robot SentBits = %d, want 0", got)
	}
}

func TestSync2AmplitudeExceedsSigma(t *testing.T) {
	cfg := Sync2Config{SigmaLocal: [2]float64{0.1, 0.1}} // swing 2.5 > 0.1
	behaviors, eps, err := NewSync2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	robots := []*sim.Robot{
		{Frame: geom.WorldFrame(), Sigma: 0.1, Behavior: behaviors[0]},
		{Frame: geom.WorldFrame(), Sigma: 0.1, Behavior: behaviors[1]},
	}
	w, err := sim.NewWorld(sim.Config{
		Positions: []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)},
		Robots:    robots,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Send(1, []byte("X")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Step(sim.Synchronous{}); err != nil {
			t.Fatal(err)
		}
	}
	r0, ok := behaviors[0].(*sync2Robot)
	if !ok {
		t.Fatal("unexpected behavior type")
	}
	if r0.Err() == nil {
		t.Error("expected ErrAmplitudeExceedsSigma to be recorded")
	}
	// And the robot must refuse to transmit rather than desynchronise.
	if got := eps[1].Receive(); len(got) != 0 {
		t.Errorf("misconfigured sender still delivered %d messages", len(got))
	}
}

func TestNewSync2Validation(t *testing.T) {
	if _, _, err := NewSync2(Sync2Config{AmplitudeFrac: 0.7}); err == nil {
		t.Error("amplitude fraction >= 0.5 accepted")
	}
	if _, _, err := NewSync2(Sync2Config{Levels: 3}); err == nil {
		t.Error("non-power-of-two level count accepted")
	}
}

func TestEndpointValidation(t *testing.T) {
	_, eps, err := NewSync2(Sync2Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Send(0, []byte("x")); err == nil {
		t.Error("self-send accepted")
	}
	if err := eps[0].Send(5, []byte("x")); err == nil {
		t.Error("out-of-range recipient accepted")
	}
	if !eps[0].Idle() {
		t.Error("fresh endpoint not idle")
	}
	if err := eps[0].Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if eps[0].Idle() {
		t.Error("endpoint with queued message reported idle")
	}
	if eps[0].PendingMessages() != 1 {
		t.Errorf("PendingMessages = %d, want 1", eps[0].PendingMessages())
	}
}
