package protocol

import "waggle/internal/geom"

// reckoner performs exact dead reckoning for a behavior. A robot's frame
// is egocentric (its own position is always the local origin), so
// world-fixed points drift through local coordinates as the robot moves.
// Behaviors therefore store world-fixed points in "init-local"
// coordinates — the frame as it was at the first activation — and track
// the accumulated self-displacement. Dead reckoning is exact in the SSM
// model provided the behavior never commands a move longer than its
// sigma (the simulator would clamp it); all protocols in this package
// respect that bound by construction.
type reckoner struct {
	// offset is the robot's displacement since init, in frame units,
	// expressed in init-local axes (the axes never rotate).
	offset geom.Vec
	ready  bool
}

// initialized reports whether init has run.
func (r *reckoner) initialized() bool { return r.ready }

// init marks the current instant as the reckoning origin.
func (r *reckoner) init() { r.ready = true }

// toCurrent converts an init-local point to current-local coordinates.
func (r *reckoner) toCurrent(initLocal geom.Point) geom.Point {
	return geom.Point{X: initLocal.X - r.offset.X, Y: initLocal.Y - r.offset.Y}
}

// toInit converts a current-local point (e.g. an observed position) to
// init-local coordinates.
func (r *reckoner) toInit(currentLocal geom.Point) geom.Point {
	return geom.Point{X: currentLocal.X + r.offset.X, Y: currentLocal.Y + r.offset.Y}
}

// selfInit returns the robot's own position in init-local coordinates.
func (r *reckoner) selfInit() geom.Point {
	return geom.Point{X: r.offset.X, Y: r.offset.Y}
}

// moveBy commands a displacement (init-local axes == current-local axes,
// since frames never rotate) and returns the destination in
// current-local coordinates for Behavior.Step.
func (r *reckoner) moveBy(delta geom.Vec) geom.Point {
	r.offset = r.offset.Add(delta)
	return geom.Point{X: delta.X, Y: delta.Y}
}

// stay commands no movement.
func (r *reckoner) stay() geom.Point { return geom.Point{} }
