package protocol

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"waggle/internal/geom"
	"waggle/internal/sim"
)

func buildAsync2World(t *testing.T, cfg Async2Config, frames [2]geom.Frame, sep float64) (*sim.World, []*Endpoint) {
	t.Helper()
	behaviors, endpoints, err := NewAsync2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	robots := make([]*sim.Robot, 2)
	for i := range robots {
		robots[i] = &sim.Robot{Frame: frames[i], Sigma: 1e9, Behavior: behaviors[i]}
	}
	w, err := sim.NewWorld(sim.Config{
		Positions:   []geom.Point{geom.Pt(0, 0), geom.Pt(sep, 0)},
		Robots:      robots,
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, endpoints
}

// asyncSchedulers enumerates the scheduler family every asynchronous
// test must survive.
func asyncSchedulers() map[string]func() sim.Scheduler {
	return map[string]func() sim.Scheduler{
		"round-robin":   func() sim.Scheduler { return sim.FirstSync{Inner: sim.RoundRobin{}} },
		"alternator":    func() sim.Scheduler { return sim.FirstSync{Inner: sim.Alternator{}} },
		"random-fair-1": func() sim.Scheduler { return sim.FirstSync{Inner: sim.NewRandomFair(1)} },
		"random-fair-2": func() sim.Scheduler { return sim.FirstSync{Inner: sim.NewRandomFair(99)} },
		"starve-0":      func() sim.Scheduler { return sim.FirstSync{Inner: sim.Starver{Victim: 0, Delay: 7}} },
		"starve-1":      func() sim.Scheduler { return sim.FirstSync{Inner: sim.Starver{Victim: 1, Delay: 7}} },
		"synchronous":   func() sim.Scheduler { return sim.Synchronous{} },
	}
}

func TestAsync2DeliveryUnderEverySchedulerFamily(t *testing.T) {
	for name, mk := range asyncSchedulers() {
		t.Run(name, func(t *testing.T) {
			w, eps := buildAsync2World(t, Async2Config{}, worldFrames(), 10)
			want := []byte("ASYNC")
			if err := eps[0].Send(1, want); err != nil {
				t.Fatal(err)
			}
			got := runUntilDelivered(t, w, mk(), eps, 1, 200_000)
			if got[0].From != 0 || got[0].To != 1 || !bytes.Equal(got[0].Payload, want) {
				t.Errorf("received %+v, want ASYNC from 0", got[0])
			}
		})
	}
}

func TestAsync2FullDuplex(t *testing.T) {
	w, eps := buildAsync2World(t, Async2Config{}, worldFrames(), 10)
	if err := eps[0].Send(1, []byte("PING")); err != nil {
		t.Fatal(err)
	}
	if err := eps[1].Send(0, []byte("PONG")); err != nil {
		t.Fatal(err)
	}
	got := runUntilDelivered(t, w, sim.FirstSync{Inner: sim.NewRandomFair(5)}, eps, 2, 200_000)
	byTo := map[int][]byte{}
	for _, r := range got {
		byTo[r.To] = r.Payload
	}
	if !bytes.Equal(byTo[1], []byte("PING")) || !bytes.Equal(byTo[0], []byte("PONG")) {
		t.Errorf("exchange wrong: %v", byTo)
	}
}

func TestAsync2ArbitraryFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 6; trial++ {
		for _, hand := range []geom.Handedness{geom.RightHanded, geom.LeftHanded} {
			w, eps := buildAsync2World(t, Async2Config{}, randomFrames(rng, hand), 4+rng.Float64()*40)
			want := []byte{0x5A, byte(trial)}
			if err := eps[1].Send(0, want); err != nil {
				t.Fatal(err)
			}
			got := runUntilDelivered(t, w, sim.FirstSync{Inner: sim.NewRandomFair(int64(trial))}, eps, 1, 200_000)
			if !bytes.Equal(got[0].Payload, want) {
				t.Fatalf("trial %d hand %v: got %v, want %v", trial, hand, got[0].Payload, want)
			}
		}
	}
}

func TestAsync2BackToBackMessages(t *testing.T) {
	w, eps := buildAsync2World(t, Async2Config{}, worldFrames(), 10)
	msgs := [][]byte{[]byte("A"), []byte("A"), []byte("zz")} // repeated payloads stress separators
	for _, m := range msgs {
		if err := eps[0].Send(1, m); err != nil {
			t.Fatal(err)
		}
	}
	got := runUntilDelivered(t, w, sim.FirstSync{Inner: sim.NewRandomFair(77)}, eps, len(msgs), 400_000)
	for i, m := range msgs {
		if !bytes.Equal(got[i].Payload, m) {
			t.Errorf("message %d = %q, want %q", i, got[i].Payload, m)
		}
	}
}

// TestAsync2NeverSilent verifies Remark 4.3: in the asynchronous
// protocol every activated robot moves, even with nothing to send —
// experiment C5's negative half.
func TestAsync2NeverSilent(t *testing.T) {
	w, _ := buildAsync2World(t, Async2Config{}, worldFrames(), 10)
	sched := sim.FirstSync{Inner: sim.NewRandomFair(3)}
	for i := 0; i < 500; i++ {
		if _, err := w.Step(sched); err != nil {
			t.Fatal(err)
		}
	}
	tr := w.Trace()
	for robot := 0; robot < 2; robot++ {
		activations := 0
		for _, s := range tr.Steps() {
			for _, a := range s.Active {
				if a == robot {
					activations++
				}
			}
		}
		moves := tr.NonTrivialMoves(robot, 1e-12)
		if moves < activations {
			t.Errorf("robot %d: %d non-trivial moves over %d activations (must move whenever active)",
				robot, moves, activations)
		}
	}
}

// TestAsync2DriftAwayGrowsSeparation reproduces the §4.1 drawback: the
// base protocol makes the robots drift apart forever (experiment C6).
func TestAsync2DriftAwayGrowsSeparation(t *testing.T) {
	w, eps := buildAsync2World(t, Async2Config{Drift: DriftAway}, worldFrames(), 10)
	if err := eps[0].Send(1, []byte("DRIFT")); err != nil {
		t.Fatal(err)
	}
	runUntilDelivered(t, w, sim.FirstSync{Inner: sim.NewRandomFair(9)}, eps, 1, 200_000)
	if sep := w.Position(0).Dist(w.Position(1)); sep < 20 {
		t.Errorf("separation %v after delivery; DriftAway should have grown it well beyond 10", sep)
	}
}

// TestAsync2AlternateBoundsSeparation verifies the §4.1 variant keeps
// the robots near their initial separation.
func TestAsync2AlternateBoundsSeparation(t *testing.T) {
	w, eps := buildAsync2World(t, Async2Config{Drift: DriftAlternate}, worldFrames(), 10)
	if err := eps[0].Send(1, []byte("NEAR")); err != nil {
		t.Fatal(err)
	}
	got := runUntilDelivered(t, w, sim.FirstSync{Inner: sim.NewRandomFair(13)}, eps, 1, 400_000)
	if !bytes.Equal(got[0].Payload, []byte("NEAR")) {
		t.Fatalf("wrong payload %q", got[0].Payload)
	}
	sep := w.Position(0).Dist(w.Position(1))
	if sep < 5 || sep > 15 {
		t.Errorf("separation %v drifted far from the initial 10", sep)
	}
	// And no collision ever happened.
	if d := w.Trace().MinPairwiseDistance(); d < 1 {
		t.Errorf("robots nearly collided: min distance %v", d)
	}
}

// TestAsync2Lemma41 is experiment C1: a direct property test of the
// paper's Lemma 4.1. Whenever a sender concludes an excursion (it
// observed the peer change twice), the peer must have observed the
// sender off the horizon line during that excursion. We verify the
// downstream consequence — every transmitted bit is eventually decoded,
// exactly once, under adversarial schedulers — plus the trace-level
// claim itself.
func TestAsync2Lemma41(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, 1+rng.Intn(6))
		rng.Read(payload)
		w, eps := buildAsync2World(t, Async2Config{}, worldFrames(), 10)
		if err := eps[0].Send(1, payload); err != nil {
			t.Fatal(err)
		}
		inner := sim.Scheduler(sim.NewRandomFair(seed))
		if seed%2 == 0 {
			inner = sim.Starver{Victim: int(seed/2) % 2, Delay: 5 + int(seed)}
		}
		got := runUntilDelivered(t, w, sim.FirstSync{Inner: inner}, eps, 1, 400_000)
		if !bytes.Equal(got[0].Payload, payload) {
			t.Fatalf("seed %d: payload corrupted: got %v want %v", seed, got[0].Payload, payload)
		}
	}
}

func TestNewAsync2Validation(t *testing.T) {
	if _, _, err := NewAsync2(Async2Config{StepFrac: 0.9}); err == nil {
		t.Error("step fraction >= 0.5 accepted")
	}
	if _, _, err := NewAsync2(Async2Config{Drift: DriftAlternate, StepDivisor: 0.5}); err == nil {
		t.Error("step divisor <= 1 accepted")
	}
}

// TestAsync2LongMessage pushes a larger payload through to exercise the
// framing across many excursions.
func TestAsync2LongMessage(t *testing.T) {
	if testing.Short() {
		t.Skip("long message")
	}
	w, eps := buildAsync2World(t, Async2Config{}, worldFrames(), 10)
	want := []byte(fmt.Sprintf("%064d", 42))
	if err := eps[0].Send(1, want); err != nil {
		t.Fatal(err)
	}
	got := runUntilDelivered(t, w, sim.FirstSync{Inner: sim.NewRandomFair(1)}, eps, 1, 2_000_000)
	if !bytes.Equal(got[0].Payload, want) {
		t.Errorf("long message corrupted")
	}
}
