package protocol

import (
	"fmt"

	"waggle/internal/geom"
	"waggle/internal/sim"
)

// AsyncNConfig configures the n-robot asynchronous protocol of §4.2.
type AsyncNConfig struct {
	// Naming selects the recipient-addressing scheme (default NamingSEC,
	// the weakest capability set of §4.2).
	Naming Naming
	// AmplitudeFrac is the never-reached excursion extent as a fraction
	// of the granular radius (default 0.9; must stay below 1 so robots
	// remain strictly inside their granulars).
	AmplitudeFrac float64
	// StepFrac is the basic movement quantum as a fraction of the
	// robot's granular radius (default 0.1).
	StepFrac float64
	// StepDivisor is the x > 1 of §4.2: approaching a boundary that must
	// never be reached, each move covers the remaining distance divided
	// by StepDivisor (default 8).
	StepDivisor float64
	// SigmaLocal optionally bounds each robot's per-activation move in
	// its own frame units (0 = effectively unbounded).
	SigmaLocal []float64
	// DirectionResolution models §5's round-off limitation: robots can
	// only realise and recognise this many equally-spaced directions
	// (0 = unlimited, the paper's infinite-precision default). Senders
	// snap their movement directions to the resolution grid and decoders
	// snap observed directions before classifying. When the protocol
	// needs more diameters than the resolution can separate, distinct
	// recipients collapse — which is precisely why §5 proposes the
	// bounded-slice variant (NewAsyncBounded).
	DirectionResolution int
}

// asyncNPhase is the sender-side state machine of Protocol Asyncn.
type asyncNPhase int

const (
	// phaseKappa: moving on the idle slice κ (idling between legs, or
	// the post-bit separator leg).
	phaseKappa asyncNPhase = iota + 1
	// phaseToCenter: returning to the granular centre before an
	// excursion.
	phaseToCenter
	// phaseSlice: excursing on the recipient's diameter, transmitting a
	// bit, waiting until every robot's position changed twice.
	phaseSlice
	// phaseBackToCenter: returning from the excursion to the centre.
	phaseBackToCenter
)

// asyncNState classifies an observed sender position for the decoder.
type asyncNState struct {
	kind stateKind
	k    int
	side sideOf
}

type stateKind int

const (
	stateCenter stateKind = iota + 1
	stateKappa
	stateSlice
)

const (
	defaultAsyncNAmplitudeFrac = 0.9
	defaultAsyncNStepFrac      = 0.1
	defaultAsyncNStepDivisor   = 8
	// centerTolFrac classifies a sender within this fraction of its
	// granular radius of its home as "at the centre".
	centerTolFrac = 1e-7
)

// NewAsyncN builds behaviors and endpoints for Protocol Asyncn: n
// robots, any fair scheduler (wrapped in sim.FirstSync so everyone
// records P(t0)), chirality only under the default SEC naming.
func NewAsyncN(n int, cfg AsyncNConfig) ([]sim.Behavior, []*Endpoint, error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("protocol: AsyncN needs >= 2 robots, got %d", n)
	}
	if cfg.Naming == 0 {
		cfg.Naming = NamingSEC
	}
	if cfg.AmplitudeFrac == 0 {
		cfg.AmplitudeFrac = defaultAsyncNAmplitudeFrac
	}
	if cfg.AmplitudeFrac <= 0 || cfg.AmplitudeFrac >= 1 {
		return nil, nil, fmt.Errorf("protocol: amplitude fraction %v outside (0, 1)", cfg.AmplitudeFrac)
	}
	if cfg.StepFrac == 0 {
		cfg.StepFrac = defaultAsyncNStepFrac
	}
	if cfg.StepFrac <= 0 || cfg.StepFrac >= cfg.AmplitudeFrac {
		return nil, nil, fmt.Errorf("protocol: step fraction %v outside (0, amplitude)", cfg.StepFrac)
	}
	if cfg.StepDivisor == 0 {
		cfg.StepDivisor = defaultAsyncNStepDivisor
	}
	if cfg.StepDivisor <= 1 {
		return nil, nil, fmt.Errorf("protocol: step divisor %v must exceed 1", cfg.StepDivisor)
	}
	behaviors := make([]sim.Behavior, n)
	endpoints := make([]*Endpoint, n)
	for i := 0; i < n; i++ {
		endpoints[i] = newEndpoint(i, n)
		var sigma float64
		if i < len(cfg.SigmaLocal) {
			sigma = cfg.SigmaLocal[i]
		}
		behaviors[i] = &asyncNRobot{cfg: cfg, endpoint: endpoints[i], sigma: sigma, coder: standardCoder{}}
	}
	return behaviors, endpoints, nil
}

// asyncNRobot is one robot of Protocol Asyncn. Idle robots oscillate on
// their κ slice so that every active robot moves (Remark 4.3) and
// waiting senders always make progress. To transmit a bit the robot
// returns to its granular centre, excurses along the recipient's
// diameter on the bit's side until every robot's position has changed
// twice (so everyone, in particular the recipient, has observed the
// excursion), returns to the centre, and performs one κ leg as a
// separator before the next bit.
type asyncNRobot struct {
	cfg      AsyncNConfig
	endpoint *Endpoint
	sigma    float64

	rk     reckoner
	geo    *swarmGeometry
	cfgErr error

	amp  float64 // excursion extent (local units)
	step float64 // movement quantum (local units)

	// Change counters over all robots (the "every robot changed twice"
	// predicate of §4.2).
	lastPos []geom.Point
	counts  []int

	phase   asyncNPhase
	kappaU  geom.Vec // unit direction of κ's positive half
	kDir    float64  // current κ leg direction (+1 / -1)
	outDir  geom.Vec // current excursion direction
	pending *txBit   // bit to transmit once centred

	txBits []txBit

	// diametersOverride forces the diameter count (the §5 bounded-slice
	// variant); 0 uses the §4.2 default of n+1.
	diametersOverride int
	// coder maps messages to excursion sequences and back (§4.2 direct
	// addressing, or §5 index preludes).
	coder asyncCoder

	// Decoder state.
	prev  []asyncNState
	sinks []excursionSink
}

var _ sim.Behavior = (*asyncNRobot)(nil)

// Step implements sim.Behavior.
func (r *asyncNRobot) Step(view sim.View) geom.Point {
	if !r.rk.initialized() {
		r.initFrom(view)
	}
	r.observeAll(view)
	r.decodeAll(view)

	if r.cfgErr != nil {
		// A robot that cannot participate (e.g. at the SEC centre) still
		// oscillates so it never blocks the others' change counters.
		if r.allChangedTwice() {
			r.kDir = -r.kDir
			r.resetChanges()
		}
		return r.legMove(geom.V(1, 0))
	}
	switch r.phase {
	case phaseToCenter:
		return r.stepToCenter()
	case phaseSlice:
		if r.allChangedTwice() {
			// Everyone — in particular the recipient — has observed this
			// excursion; a drained queue means the message arrived.
			if r.pending == nil && len(r.txBits) == 0 && r.endpoint.PendingMessages() == 0 {
				r.endpoint.inflight = false
			}
			r.phase = phaseBackToCenter
			return r.stepBackToCenter()
		}
		return r.axisMove(r.outDir, 1)
	case phaseBackToCenter:
		return r.stepBackToCenter()
	default:
		return r.stepKappa()
	}
}

// Err returns the configuration error detected at init, if any.
func (r *asyncNRobot) Err() error { return r.cfgErr }

func (r *asyncNRobot) initFrom(view sim.View) {
	r.rk.init()
	r.geo = buildSwarmGeometry(view, r.cfg.Naming, true, r.diametersOverride, r.endpoint.radiiCache())
	r.cfgErr = r.geo.err
	radius := r.geo.radii[view.Self]
	r.amp = r.cfg.AmplitudeFrac * radius
	r.step = r.cfg.StepFrac * radius
	if r.sigma > 0 && r.step > r.sigma {
		r.step = r.sigma
	}
	if r.cfgErr == nil && r.step < 100*centerTolFrac*radius {
		r.cfgErr = fmt.Errorf("%w: step %v invisible against granular %v",
			ErrAmplitudeExceedsSigma, r.step, radius)
	}
	r.lastPos = make([]geom.Point, view.N())
	r.counts = make([]int, view.N())
	for j, p := range view.Points {
		r.lastPos[j] = r.rk.toInit(p)
	}
	r.phase = phaseKappa
	if r.cfgErr == nil {
		r.kappaU = quantizeDir(r.geo.kappaDir(view.Self), r.cfg.DirectionResolution).Unit()
	}
	r.kDir = 1
	r.prev = make([]asyncNState, view.N())
	r.sinks = make([]excursionSink, view.N())
	for j := range r.prev {
		r.prev[j] = asyncNState{kind: stateCenter}
		if j != view.Self && r.geo.canDecode(j) {
			r.sinks[j] = r.coder.newSink(r.geo, j)
		}
	}
}

// observeAll updates the per-robot change counters.
func (r *asyncNRobot) observeAll(view sim.View) {
	for j, p := range view.Points {
		if j == view.Self {
			continue
		}
		cur := r.rk.toInit(p)
		tol := 1e-9 * r.geo.radii[j]
		if cur.Dist(r.lastPos[j]) > tol {
			r.counts[j]++
			r.lastPos[j] = cur
		}
	}
}

// resetChanges starts a new waiting phase with the current observations
// as baseline. (observeAll has already run this activation, so lastPos
// is current.)
func (r *asyncNRobot) resetChanges() {
	for j := range r.counts {
		r.counts[j] = 0
	}
}

// allChangedTwice reports whether every other robot's position has
// changed at least twice since the last reset.
func (r *asyncNRobot) allChangedTwice() bool {
	for j, c := range r.counts {
		if j == r.geo.self {
			continue
		}
		if c < 2 {
			return false
		}
	}
	return true
}

// stepKappa idles (or separates) on κ: same direction within a leg,
// flipping when every robot has changed twice; a pending message
// redirects the robot to its centre instead of flipping.
func (r *asyncNRobot) stepKappa() geom.Point {
	if r.allChangedTwice() {
		if r.refillBits() {
			r.phase = phaseToCenter
			r.resetChanges()
			return r.stepToCenter()
		}
		r.kDir = -r.kDir
		r.resetChanges()
	}
	return r.legMove(r.kappaU)
}

// legMove advances along the axis towards kDir*amp with boundary decay.
func (r *asyncNRobot) legMove(axis geom.Vec) geom.Point {
	self := geom.V(r.rk.selfInit().X, r.rk.selfInit().Y)
	s := self.Dot(axis)
	delta := r.kDir*r.amp - s
	mag := delta
	if mag < 0 {
		mag = -mag
	}
	move := mag / r.cfg.StepDivisor
	if move > r.step {
		move = r.step
	}
	if delta < 0 {
		move = -move
	}
	return r.rk.moveBy(axis.Scale(move))
}

// axisMove advances away from the centre along dir towards amp with
// boundary decay (the §4.2 excursion movement).
func (r *asyncNRobot) axisMove(dir geom.Vec, sign float64) geom.Point {
	self := geom.V(r.rk.selfInit().X, r.rk.selfInit().Y)
	s := self.Dot(dir)
	remaining := r.amp - s
	if remaining < 0 {
		remaining = 0
	}
	move := remaining / r.cfg.StepDivisor
	if move > r.step {
		move = r.step
	}
	return r.rk.moveBy(dir.Scale(sign * move))
}

// stepToCenter returns to the granular centre, then launches the pending
// excursion.
func (r *asyncNRobot) stepToCenter() geom.Point {
	self := r.rk.selfInit()
	if self.Eq(geom.Point{}) {
		// Centred: begin the excursion now (this activation must move).
		bit := r.pending
		r.pending = nil
		if bit == nil {
			r.phase = phaseKappa
			return r.legMove(r.kappaU)
		}
		dir := r.geo.slicers[r.geo.self].direction(bit.diameter, bit.side)
		r.outDir = quantizeDir(dir, r.cfg.DirectionResolution).Unit()
		r.phase = phaseSlice
		r.resetChanges()
		r.endpoint.sentBits++
		return r.axisMove(r.outDir, 1)
	}
	next := moveToward(self, geom.Point{}, r.maxStep())
	return r.rk.moveBy(next.Sub(self))
}

// stepBackToCenter returns from an excursion; on arrival the κ separator
// leg begins.
func (r *asyncNRobot) stepBackToCenter() geom.Point {
	self := r.rk.selfInit()
	next := moveToward(self, geom.Point{}, r.maxStep())
	if next.Eq(geom.Point{}) {
		r.phase = phaseKappa
		r.kDir = 1
		r.resetChanges()
	}
	return r.rk.moveBy(next.Sub(self))
}

func (r *asyncNRobot) maxStep() float64 {
	if r.sigma > 0 && r.sigma < r.step {
		return r.sigma
	}
	return r.step
}

// refillBits ensures a pending bit exists, pulling frames from the
// outbox; it reports whether a bit is ready.
func (r *asyncNRobot) refillBits() bool {
	if r.pending != nil {
		return true
	}
	for len(r.txBits) == 0 {
		msg, ok := r.endpoint.pop()
		if !ok {
			r.endpoint.inflight = false
			return false
		}
		bits, err := r.coder.encode(r.geo, msg)
		if err != nil {
			continue
		}
		r.txBits = bits
		r.endpoint.inflight = true
	}
	bit := r.txBits[0]
	r.txBits = r.txBits[1:]
	r.pending = &bit
	return true
}

// decodeAll classifies every other robot's position and emits a bit on
// every transition into a recipient-slice state.
func (r *asyncNRobot) decodeAll(view sim.View) {
	if r.geo == nil {
		return
	}
	for j := range view.Points {
		if j == view.Self || r.sinks[j] == nil {
			continue
		}
		st := r.classify(j, view.Points[j])
		prev := r.prev[j]
		r.prev[j] = st
		if st.kind != stateSlice || st == prev {
			continue
		}
		if rec, done := r.sinks[j].consume(st.k, st.side); done {
			r.endpoint.deliver(rec)
		}
	}
}

// classify maps robot j's observed position to a decoder state.
func (r *asyncNRobot) classify(j int, cur geom.Point) asyncNState {
	d := r.rk.toInit(cur).Sub(r.geo.p0[j])
	if d.Len() <= centerTolFrac*r.geo.radii[j] {
		return asyncNState{kind: stateCenter}
	}
	// §5: a resolution-limited sensor only distinguishes so many
	// directions; the observed displacement snaps to the grid before
	// classification.
	d = quantizeDir(d, r.cfg.DirectionResolution)
	k, side := r.geo.slicers[j].classify(d)
	if _, isRecipient := r.geo.diameterRecipient(k); !isRecipient {
		return asyncNState{kind: stateKappa}
	}
	return asyncNState{kind: stateSlice, k: k, side: side}
}
