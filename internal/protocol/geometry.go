package protocol

import (
	"errors"
	"fmt"

	"waggle/internal/geom"
	"waggle/internal/naming"
	"waggle/internal/sec"
	"waggle/internal/sim"
)

// ErrNoHorizon is recorded when a robot sits exactly at the centre of
// the smallest enclosing circle under the SEC naming scheme: it has no
// horizon radius, so it can neither orient its granular slices nor be
// assigned one by other senders (§3.4 silently assumes this away; the
// library surfaces it).
var ErrNoHorizon = errors.New("protocol: robot at SEC centre has no horizon")

// swarmGeometry is the §3.2/§3.4 preprocessing, computed by one robot
// from its first view (which, by the "all robots awake at t0"
// assumption, shows the initial configuration P(t0)). Everything is in
// the observer's init-local coordinates; because all the quantities used
// downstream are similarity-invariant (angle offsets from reference
// directions, length ratios against granular radii, clockwise order
// under shared handedness), every robot derives consistent values.
type swarmGeometry struct {
	self  int
	p0    []geom.Point // initial positions, init-local
	radii []float64    // granular radii, init-local units

	diameters int  // diameters per sliced granular
	kappa     bool // diameter 0 is the idle slice κ (§4.2)

	// slicers[j] classifies robot j's movements.
	slicers []slicer
	// labelOf[j][h] is the label robot j uses for the robot with home
	// index h; homeOf[j][l] inverts it. nil for a sender with no horizon
	// under SEC naming.
	labelOf [][]int
	homeOf  [][]int

	err error
}

// buildSwarmGeometry runs the preprocessing for the given naming scheme.
// extraKappa reserves diameter 0 as the §4.2 idle slice κ, mapping
// recipient label l to diameter l+1; otherwise label l is on diameter l.
// diameters overrides the diameter count (0 means the default: n, or
// n+1 with κ) — the §5 bounded-slice protocol slices far fewer
// diameters than robots. cache, when non-nil, reuses radii work from
// this robot's previous initialisations (bit-identical either way).
func buildSwarmGeometry(view sim.View, scheme Naming, extraKappa bool, diameters int, cache *RadiiCache) *swarmGeometry {
	n := view.N()
	g := &swarmGeometry{
		self:  view.Self,
		p0:    append([]geom.Point(nil), view.Points...),
		radii: cache.Radii(view.Points),
		kappa: extraKappa,
	}
	g.diameters = diameters
	if g.diameters <= 0 {
		g.diameters = n
		if extraKappa {
			g.diameters = n + 1
		}
	}
	g.slicers = make([]slicer, n)
	g.labelOf = make([][]int, n)
	g.homeOf = make([][]int, n)

	switch scheme {
	case NamingIDs:
		if view.IDs == nil {
			g.err = errors.New("protocol: IDs naming on an anonymous system")
			return g
		}
		shared := make([]int, n)
		copy(shared, view.IDs)
		g.fillSharedNaming(shared)
		g.fillNorthSlicers()
	case NamingLex:
		g.fillSharedNaming(naming.LexLabels(g.p0))
		g.fillNorthSlicers()
	case NamingSEC:
		circle, err := sec.Enclosing(g.p0)
		if err != nil {
			g.err = fmt.Errorf("protocol: smallest enclosing circle: %w", err)
			return g
		}
		for j := 0; j < n; j++ {
			horizon := g.p0[j].Sub(circle.Center)
			if horizon.IsZero() {
				// Robot j has no horizon: it cannot send and cannot be
				// decoded; only fatal if j is self.
				if j == g.self {
					g.err = ErrNoHorizon
				}
				continue
			}
			g.slicers[j] = newSlicer(horizon, g.diameters)
			labels, err := naming.SECLabels(g.p0, j, circle)
			if err != nil {
				if j == g.self {
					g.err = fmt.Errorf("protocol: relative naming: %w", err)
				}
				continue
			}
			g.labelOf[j] = labels
			g.homeOf[j] = invertLabels(labels)
		}
	default:
		g.err = fmt.Errorf("protocol: unknown naming scheme %d", int(scheme))
	}
	return g
}

// fillSharedNaming installs one labelling common to every sender
// (observable IDs or the lexicographic order).
func (g *swarmGeometry) fillSharedNaming(labels []int) {
	inv := invertLabels(labels)
	for j := range g.labelOf {
		g.labelOf[j] = labels
		g.homeOf[j] = inv
	}
}

// fillNorthSlicers orients every granular on the shared North (+y):
// valid under sense of direction, where all local frames agree on it.
func (g *swarmGeometry) fillNorthSlicers() {
	north := geom.V(0, 1)
	for j := range g.slicers {
		g.slicers[j] = newSlicer(north, g.diameters)
	}
}

// canDecode reports whether movements of sender j are classifiable.
func (g *swarmGeometry) canDecode(j int) bool {
	return g.labelOf[j] != nil && !g.slicers[j].ref.IsZero()
}

// txLabel maps an outbound recipient (a home index, or ToAll) to the
// label whose diameter carries the transmission. Broadcasts use the
// sender's own label: a robot never unicasts to itself, so its own
// diameter is free to mean "to everyone".
func (g *swarmGeometry) txLabel(to int) int {
	if to == ToAll {
		return g.labelOf[g.self][g.self]
	}
	return g.labelOf[g.self][to]
}

// rxRecipient maps a decoded (sender, label) pair to the delivery
// target: the sender's own label means broadcast, delivered to the
// observer itself.
func (g *swarmGeometry) rxRecipient(sender, label int) int {
	to := g.homeOf[sender][label]
	if to == sender {
		return g.self
	}
	return to
}

// recipientDiameter returns the diameter index carrying bits addressed
// to the given label.
func (g *swarmGeometry) recipientDiameter(label int) int {
	if g.kappa {
		return label + 1
	}
	return label
}

// diameterRecipient inverts recipientDiameter; ok is false for the κ
// diameter.
func (g *swarmGeometry) diameterRecipient(k int) (int, bool) {
	if g.kappa {
		if k == 0 {
			return 0, false
		}
		return k - 1, true
	}
	return k, true
}

// kappaDir returns the positive unit direction of the idle slice κ of
// robot j.
func (g *swarmGeometry) kappaDir(j int) geom.Vec {
	return g.slicers[j].direction(0, 0)
}

func invertLabels(labels []int) []int {
	inv := make([]int, len(labels))
	for i, l := range labels {
		inv[l] = i
	}
	return inv
}
