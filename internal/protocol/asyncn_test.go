package protocol

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"waggle/internal/geom"
	"waggle/internal/sim"
)

func buildAsyncNWorld(t *testing.T, positions []geom.Point, frames []geom.Frame, cfg AsyncNConfig) (*sim.World, []*Endpoint) {
	t.Helper()
	n := len(positions)
	behaviors, endpoints, err := NewAsyncN(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	robots := make([]*sim.Robot, n)
	for i := range robots {
		robots[i] = &sim.Robot{Frame: frames[i], Sigma: 1e9, Behavior: behaviors[i]}
	}
	w, err := sim.NewWorld(sim.Config{
		Positions:   positions,
		Robots:      robots,
		Identified:  cfg.Naming == NamingIDs,
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, endpoints
}

func TestAsyncNDeliveryAcrossSchedulers(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	positions := randomPositions(rng, 5, 6)
	for name, mk := range asyncSchedulers() {
		t.Run(name, func(t *testing.T) {
			frames := frameSet(rng, 5, false, geom.RightHanded)
			w, eps := buildAsyncNWorld(t, positions, frames, AsyncNConfig{})
			want := []byte("AN")
			if err := eps[0].Send(3, want); err != nil {
				t.Fatal(err)
			}
			got := runUntilDelivered(t, w, mk(), eps, 1, 500_000)
			if got[0].From != 0 || got[0].To != 3 || !bytes.Equal(got[0].Payload, want) {
				t.Errorf("received %+v, want AN from 0 to 3", got[0])
			}
		})
	}
}

func TestAsyncNNamingSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	positions := randomPositions(rng, 6, 6)
	schemes := []struct {
		name   string
		scheme Naming
		sod    bool
	}{
		{"ids", NamingIDs, true},
		{"lex", NamingLex, true},
		{"sec", NamingSEC, false},
	}
	for _, sc := range schemes {
		t.Run(sc.name, func(t *testing.T) {
			frames := frameSet(rng, 6, sc.sod, geom.RightHanded)
			w, eps := buildAsyncNWorld(t, positions, frames, AsyncNConfig{Naming: sc.scheme})
			want := []byte{0xAB}
			if err := eps[4].Send(1, want); err != nil {
				t.Fatal(err)
			}
			got := runUntilDelivered(t, w, sim.FirstSync{Inner: sim.NewRandomFair(2)}, eps, 1, 500_000)
			if got[0].From != 4 || got[0].To != 1 || !bytes.Equal(got[0].Payload, want) {
				t.Errorf("received %+v", got[0])
			}
		})
	}
}

func TestAsyncNConcurrentSenders(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	n := 5
	positions := randomPositions(rng, n, 8)
	frames := frameSet(rng, n, false, geom.LeftHanded)
	w, eps := buildAsyncNWorld(t, positions, frames, AsyncNConfig{})
	for i := 0; i < n; i++ {
		to := (i + 2) % n
		if err := eps[i].Send(to, []byte{byte(0x40 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := runUntilDelivered(t, w, sim.FirstSync{Inner: sim.NewRandomFair(41)}, eps, n, 2_000_000)
	seen := map[int]byte{}
	for _, r := range got {
		if r.To != (r.From+2)%n {
			t.Errorf("message from %d delivered to %d", r.From, r.To)
		}
		seen[r.From] = r.Payload[0]
	}
	for i := 0; i < n; i++ {
		if seen[i] != byte(0x40+i) {
			t.Errorf("sender %d: payload %#x", i, seen[i])
		}
	}
}

func TestAsyncNRepeatedBits(t *testing.T) {
	// All-zero and all-one payloads stress the κ separator: consecutive
	// equal bits must stay distinguishable (§4.2's explicit concern).
	rng := rand.New(rand.NewSource(43))
	positions := randomPositions(rng, 3, 10)
	frames := frameSet(rng, 3, false, geom.RightHanded)
	w, eps := buildAsyncNWorld(t, positions, frames, AsyncNConfig{})
	msgs := [][]byte{{0x00}, {0xFF}, {0x00}}
	for _, m := range msgs {
		if err := eps[2].Send(0, m); err != nil {
			t.Fatal(err)
		}
	}
	got := runUntilDelivered(t, w, sim.FirstSync{Inner: sim.NewRandomFair(4)}, eps, len(msgs), 2_000_000)
	for i, m := range msgs {
		if !bytes.Equal(got[i].Payload, m) {
			t.Errorf("message %d = %v, want %v", i, got[i].Payload, m)
		}
	}
}

func TestAsyncNCollisionAvoidance(t *testing.T) {
	// C7 in the asynchronous setting: granular confinement throughout.
	rng := rand.New(rand.NewSource(47))
	positions := randomPositions(rng, 6, 5)
	frames := frameSet(rng, 6, false, geom.RightHanded)
	w, eps := buildAsyncNWorld(t, positions, frames, AsyncNConfig{})
	if err := eps[0].Send(5, []byte("CA")); err != nil {
		t.Fatal(err)
	}
	if err := eps[3].Send(1, []byte("CB")); err != nil {
		t.Fatal(err)
	}
	runUntilDelivered(t, w, sim.FirstSync{Inner: sim.NewRandomFair(6)}, eps, 2, 2_000_000)
	homes := w.Trace().Initial()
	radii := granularRadii(homes)
	for _, s := range w.Trace().Steps() {
		for i, p := range s.Positions {
			if p.Dist(homes[i]) > radii[i]+1e-9 {
				t.Fatalf("robot %d left its granular at t=%d (dist %v > %v)",
					i, s.Time, p.Dist(homes[i]), radii[i])
			}
		}
	}
	if d := w.Trace().MinPairwiseDistance(); d <= 0 {
		t.Error("robots collided")
	}
}

// TestAsyncNNeverSilent is the §4 half of experiment C5: every activated
// robot moves, even the idle ones.
func TestAsyncNNeverSilent(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	positions := randomPositions(rng, 4, 8)
	frames := frameSet(rng, 4, false, geom.RightHanded)
	w, _ := buildAsyncNWorld(t, positions, frames, AsyncNConfig{})
	sched := sim.FirstSync{Inner: sim.NewRandomFair(8)}
	for i := 0; i < 400; i++ {
		if _, err := w.Step(sched); err != nil {
			t.Fatal(err)
		}
	}
	tr := w.Trace()
	for robot := 0; robot < 4; robot++ {
		activations := 0
		for _, s := range tr.Steps() {
			for _, a := range s.Active {
				if a == robot {
					activations++
				}
			}
		}
		if moves := tr.NonTrivialMoves(robot, 0); moves < activations {
			t.Errorf("robot %d: %d moves over %d activations", robot, moves, activations)
		}
	}
}

func TestAsyncNEavesdropRedundancy(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	positions := randomPositions(rng, 4, 8)
	frames := frameSet(rng, 4, false, geom.RightHanded)
	w, eps := buildAsyncNWorld(t, positions, frames, AsyncNConfig{})
	want := []byte("EV")
	if err := eps[0].Send(1, want); err != nil {
		t.Fatal(err)
	}
	sched := sim.FirstSync{Inner: sim.NewRandomFair(10)}
	runUntilDelivered(t, w, sched, eps, 1, 1_000_000)
	// The recipient decodes first; give the eavesdropper a few more
	// activations to observe the sender's final excursion.
	for i := 0; i < 2_000; i++ {
		if _, err := w.Step(sched); err != nil {
			t.Fatal(err)
		}
	}
	over := eps[3].Overheard()
	if len(over) != 1 || over[0].From != 0 || over[0].To != 1 || !bytes.Equal(over[0].Payload, want) {
		t.Errorf("robot 3 overheard %+v, want EV 0->1", over)
	}
}

func TestAsyncNTwoRobots(t *testing.T) {
	// AsyncN must also work at its lower bound n=2, where §4.2 says it
	// coincides in spirit with Async2.
	frames := []geom.Frame{geom.WorldFrame(), geom.WorldFrame()}
	w, eps := buildAsyncNWorld(t, []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}, frames, AsyncNConfig{})
	want := []byte("2!")
	if err := eps[1].Send(0, want); err != nil {
		t.Fatal(err)
	}
	got := runUntilDelivered(t, w, sim.FirstSync{Inner: sim.RoundRobin{}}, eps, 1, 1_000_000)
	if !bytes.Equal(got[0].Payload, want) {
		t.Errorf("payload %q", got[0].Payload)
	}
}

func TestNewAsyncNValidation(t *testing.T) {
	tests := []struct {
		name string
		n    int
		cfg  AsyncNConfig
	}{
		{"n too small", 1, AsyncNConfig{}},
		{"amplitude out of range", 3, AsyncNConfig{AmplitudeFrac: 1.2}},
		{"step above amplitude", 3, AsyncNConfig{AmplitudeFrac: 0.5, StepFrac: 0.6}},
		{"divisor too small", 3, AsyncNConfig{StepDivisor: 0.9}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := NewAsyncN(tt.n, tt.cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestAsyncNSECCenterRobotDegradesGracefully(t *testing.T) {
	// A robot exactly at the SEC centre has no horizon (§3.4's blind
	// spot): it must flag the error yet keep the swarm live.
	positions := []geom.Point{
		geom.Pt(0, 0), // at the SEC centre of the surrounding square
		geom.Pt(10, 0), geom.Pt(-10, 0), geom.Pt(0, 10), geom.Pt(0, -10),
	}
	frames := make([]geom.Frame, 5)
	for i := range frames {
		frames[i] = geom.WorldFrame()
	}
	behaviors, eps, err := NewAsyncN(5, AsyncNConfig{})
	if err != nil {
		t.Fatal(err)
	}
	robots := make([]*sim.Robot, 5)
	for i := range robots {
		robots[i] = &sim.Robot{Frame: frames[i], Sigma: 1e9, Behavior: behaviors[i]}
	}
	w, err := sim.NewWorld(sim.Config{Positions: positions, Robots: robots})
	if err != nil {
		t.Fatal(err)
	}
	// Robots 1 and 3 can still talk even with robot 0 at the centre.
	if err := eps[1].Send(3, []byte("OK")); err != nil {
		t.Fatal(err)
	}
	var got []Received
	_, ok, err := w.Run(sim.FirstSync{Inner: sim.NewRandomFair(12)}, 1_000_000, func(*sim.World) bool {
		got = append(got, eps[3].Receive()...)
		return len(got) > 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("delivery blocked by centre robot")
	}
	if !bytes.Equal(got[0].Payload, []byte("OK")) {
		t.Errorf("payload %q", got[0].Payload)
	}
	r0, okCast := behaviors[0].(*asyncNRobot)
	if !okCast {
		t.Fatal("unexpected behavior type")
	}
	if r0.Err() == nil {
		t.Error("centre robot did not flag ErrNoHorizon")
	}
}

func TestAsyncNLongMessageManyRobots(t *testing.T) {
	if testing.Short() {
		t.Skip("long test")
	}
	rng := rand.New(rand.NewSource(61))
	n := 8
	positions := randomPositions(rng, n, 6)
	frames := frameSet(rng, n, false, geom.RightHanded)
	w, eps := buildAsyncNWorld(t, positions, frames, AsyncNConfig{})
	want := []byte(fmt.Sprintf("swarm of %d robots", n))
	if err := eps[0].Send(n-1, want); err != nil {
		t.Fatal(err)
	}
	got := runUntilDelivered(t, w, sim.FirstSync{Inner: sim.NewRandomFair(3)}, eps, 1, 5_000_000)
	if !bytes.Equal(got[0].Payload, want) {
		t.Errorf("payload corrupted: %q", got[0].Payload)
	}
}
