package protocol

import (
	"waggle/internal/geom"
	"waggle/internal/spatial"
)

// RadiiCache memoises the granular-radii preprocessing across protocol
// re-initialisations. The §3.2 radii are recomputed from scratch every
// time a behavior runs initFrom — in particular once per Stabilizing
// epoch — even though between epochs most robots have barely moved. The
// cache wraps spatial.DynamicRadii, which recomputes only the radii
// whose nearest-neighbour disc a moved point entered or left, and falls
// back to the full derivation when too much moved (or when the observer
// itself moved, which shifts every point in its egocentric frame).
// Values are always bit-identical to a fresh granularRadii call.
//
// The cache lives on the Endpoint, not the behavior: Stabilizing
// discards and rebuilds the inner behavior every epoch, while the
// Endpoint — like the outbox — persists for the lifetime of the robot.
type RadiiCache struct {
	dyn *spatial.DynamicRadii
}

// Radii returns the granular radii of pts, bit-identical to
// granularRadii(pts). The returned slice is a fresh copy the caller
// owns (swarmGeometry retains it across steps). A nil receiver computes
// directly without caching.
func (c *RadiiCache) Radii(pts []geom.Point) []float64 {
	if c == nil {
		return granularRadii(pts)
	}
	if c.dyn == nil {
		c.dyn = spatial.NewDynamicRadii(pts)
		return append([]float64(nil), c.dyn.Radii()...)
	}
	return append([]float64(nil), c.dyn.Update(pts)...)
}
