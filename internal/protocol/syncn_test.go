package protocol

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"waggle/internal/geom"
	"waggle/internal/sim"
)

// frameSet builds n frames for a capability set: sense of direction
// means a shared rotation; otherwise rotations are random. Scales are
// always private. Handedness is always shared (chirality).
func frameSet(rng *rand.Rand, n int, senseOfDirection bool, hand geom.Handedness) []geom.Frame {
	frames := make([]geom.Frame, n)
	for i := range frames {
		theta := 0.0
		if !senseOfDirection {
			theta = rng.Float64() * 2 * math.Pi
		}
		frames[i] = geom.NewFrame(geom.Point{}, theta, 0.2+rng.Float64()*4, hand)
	}
	return frames
}

// randomPositions places n robots with pairwise separation >= minSep.
func randomPositions(rng *rand.Rand, n int, minSep float64) []geom.Point {
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		ok := true
		for _, q := range pts {
			if p.Dist(q) < minSep {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, p)
		}
	}
	return pts
}

func buildSyncNWorld(t *testing.T, positions []geom.Point, frames []geom.Frame, cfg SyncNConfig) (*sim.World, []*Endpoint) {
	t.Helper()
	n := len(positions)
	behaviors, endpoints, err := NewSyncN(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	robots := make([]*sim.Robot, n)
	for i := range robots {
		robots[i] = &sim.Robot{Frame: frames[i], Sigma: 1e9, Behavior: behaviors[i]}
	}
	w, err := sim.NewWorld(sim.Config{
		Positions:   positions,
		Robots:      robots,
		Identified:  cfg.Naming == NamingIDs,
		RecordTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, endpoints
}

// fig2Positions is a 12-robot layout in the spirit of the paper's
// Figure 2.
func fig2Positions() []geom.Point {
	return []geom.Point{
		geom.Pt(12, 55), geom.Pt(35, 66), geom.Pt(57, 71), geom.Pt(77, 58),
		geom.Pt(24, 40), geom.Pt(45, 48), geom.Pt(68, 42), geom.Pt(88, 36),
		geom.Pt(15, 20), geom.Pt(38, 12), geom.Pt(60, 18), geom.Pt(82, 14),
	}
}

func TestSyncNDelivery(t *testing.T) {
	schemes := []struct {
		name   string
		scheme Naming
		sod    bool
	}{
		{"ids", NamingIDs, true},
		{"lex", NamingLex, true},
		{"sec", NamingSEC, false},
	}
	for _, sc := range schemes {
		t.Run(sc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			positions := fig2Positions()
			frames := frameSet(rng, len(positions), sc.sod, geom.RightHanded)
			w, eps := buildSyncNWorld(t, positions, frames, SyncNConfig{Naming: sc.scheme})
			// Figure 2's scenario: robot 9 sends to robot 3.
			want := []byte("FIG2")
			if err := eps[9].Send(3, want); err != nil {
				t.Fatal(err)
			}
			got := runUntilDelivered(t, w, sim.Synchronous{}, eps, 1, 10_000)
			if got[0].From != 9 || got[0].To != 3 || !bytes.Equal(got[0].Payload, want) {
				t.Errorf("received %+v, want FIG2 from 9 to 3", got[0])
			}
		})
	}
}

func TestSyncNConcurrentSenders(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	positions := randomPositions(rng, 8, 5)
	frames := frameSet(rng, 8, false, geom.LeftHanded)
	w, eps := buildSyncNWorld(t, positions, frames, SyncNConfig{Naming: NamingSEC})
	// Every robot sends to its successor simultaneously.
	for i := range eps {
		to := (i + 1) % len(eps)
		if err := eps[i].Send(to, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := runUntilDelivered(t, w, sim.Synchronous{}, eps, len(eps), 20_000)
	seen := map[int]string{}
	for _, r := range got {
		if r.To != (r.From+1)%len(eps) {
			t.Errorf("message from %d delivered to %d", r.From, r.To)
		}
		seen[r.From] = string(r.Payload)
	}
	for i := range eps {
		if seen[i] != fmt.Sprintf("m%d", i) {
			t.Errorf("sender %d: payload %q", i, seen[i])
		}
	}
}

func TestSyncNEavesdropRedundancy(t *testing.T) {
	// §3.4: every robot can read every message (fault-tolerance by
	// redundancy). A third robot must overhear the 9->3 traffic.
	rng := rand.New(rand.NewSource(5))
	positions := fig2Positions()
	frames := frameSet(rng, len(positions), false, geom.RightHanded)
	w, eps := buildSyncNWorld(t, positions, frames, SyncNConfig{Naming: NamingSEC})
	want := []byte("SECRET")
	if err := eps[9].Send(3, want); err != nil {
		t.Fatal(err)
	}
	runUntilDelivered(t, w, sim.Synchronous{}, eps, 1, 10_000)
	over := eps[7].Overheard()
	if len(over) != 1 {
		t.Fatalf("robot 7 overheard %d messages, want 1", len(over))
	}
	if over[0].From != 9 || over[0].To != 3 || !bytes.Equal(over[0].Payload, want) {
		t.Errorf("overheard %+v", over[0])
	}
}

func TestSyncNCollisionAvoidance(t *testing.T) {
	// C7: robots must never leave their granulars, so the minimum
	// pairwise distance can never fall below the sum of the two closest
	// granular margins. With amplitude 0.6 the distance between two
	// robots at initial distance d is always >= d - 2*0.6*(d/2) = 0.4d.
	rng := rand.New(rand.NewSource(31))
	positions := randomPositions(rng, 10, 4)
	frames := frameSet(rng, 10, false, geom.RightHanded)
	w, eps := buildSyncNWorld(t, positions, frames, SyncNConfig{Naming: NamingSEC})
	for i := range eps {
		if err := eps[i].Broadcast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	wantTotal := len(eps) * (len(eps) - 1)
	runUntilDelivered(t, w, sim.Synchronous{}, eps, wantTotal, 200_000)
	minInit := math.Inf(1)
	for i := range positions {
		for j := i + 1; j < len(positions); j++ {
			minInit = math.Min(minInit, positions[i].Dist(positions[j]))
		}
	}
	if got := w.Trace().MinPairwiseDistance(); got < 0.4*minInit-1e-9 {
		t.Errorf("min pairwise distance %v < %v: collision bound violated", got, 0.4*minInit)
	}
	// Stronger invariant: nobody ever left its granular.
	homes := w.Trace().Initial()
	radii := granularRadii(homes)
	for _, s := range w.Trace().Steps() {
		for i, p := range s.Positions {
			if p.Dist(homes[i]) > radii[i]+1e-9 {
				t.Fatalf("robot %d left its granular at t=%d", i, s.Time)
			}
		}
	}
}

func TestSyncNSilent(t *testing.T) {
	// C5: synchronous protocols are silent — robots with no pending
	// message never move.
	rng := rand.New(rand.NewSource(3))
	positions := randomPositions(rng, 6, 5)
	frames := frameSet(rng, 6, false, geom.RightHanded)
	w, eps := buildSyncNWorld(t, positions, frames, SyncNConfig{Naming: NamingSEC})
	if err := eps[0].Send(1, []byte("Z")); err != nil {
		t.Fatal(err)
	}
	runUntilDelivered(t, w, sim.Synchronous{}, eps, 1, 10_000)
	for i := 2; i < 6; i++ {
		if d := w.Trace().TotalDistance(i); d > 1e-9 {
			t.Errorf("idle robot %d moved %v", i, d)
		}
	}
}

func TestSyncNLargeSwarm(t *testing.T) {
	if testing.Short() {
		t.Skip("large swarm")
	}
	rng := rand.New(rand.NewSource(7))
	n := 48
	positions := randomPositions(rng, n, 3)
	frames := frameSet(rng, n, false, geom.RightHanded)
	w, eps := buildSyncNWorld(t, positions, frames, SyncNConfig{Naming: NamingSEC})
	if err := eps[0].Send(n-1, []byte("BIG")); err != nil {
		t.Fatal(err)
	}
	got := runUntilDelivered(t, w, sim.Synchronous{}, eps, 1, 10_000)
	if got[0].To != n-1 || !bytes.Equal(got[0].Payload, []byte("BIG")) {
		t.Errorf("large swarm delivery wrong: %+v", got[0])
	}
}

func TestSyncNBroadcast(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	positions := randomPositions(rng, 5, 5)
	frames := frameSet(rng, 5, true, geom.RightHanded)
	w, eps := buildSyncNWorld(t, positions, frames, SyncNConfig{Naming: NamingLex})
	if err := eps[2].Broadcast([]byte("ALL")); err != nil {
		t.Fatal(err)
	}
	got := runUntilDelivered(t, w, sim.Synchronous{}, eps, 4, 50_000)
	toSeen := map[int]bool{}
	for _, r := range got {
		if r.From != 2 || !bytes.Equal(r.Payload, []byte("ALL")) {
			t.Errorf("bad broadcast copy %+v", r)
		}
		toSeen[r.To] = true
	}
	for i := 0; i < 5; i++ {
		if i != 2 && !toSeen[i] {
			t.Errorf("robot %d missed the broadcast", i)
		}
	}
}

func TestNewSyncNValidation(t *testing.T) {
	if _, _, err := NewSyncN(1, SyncNConfig{}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, _, err := NewSyncN(3, SyncNConfig{AmplitudeFrac: 1.5}); err == nil {
		t.Error("amplitude fraction >= 1 accepted")
	}
}

func TestSyncNIDsRequiresIdentifiedSystem(t *testing.T) {
	// Running the IDs scheme on an anonymous world must surface a
	// configuration error rather than misbehave.
	rng := rand.New(rand.NewSource(2))
	positions := randomPositions(rng, 3, 5)
	behaviors, eps, err := NewSyncN(3, SyncNConfig{Naming: NamingIDs})
	if err != nil {
		t.Fatal(err)
	}
	robots := make([]*sim.Robot, 3)
	for i := range robots {
		robots[i] = &sim.Robot{Frame: geom.WorldFrame(), Sigma: 1e9, Behavior: behaviors[i]}
	}
	w, err := sim.NewWorld(sim.Config{Positions: positions, Robots: robots}) // anonymous!
	if err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Send(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := w.Step(sim.Synchronous{}); err != nil {
			t.Fatal(err)
		}
	}
	r0, ok := behaviors[0].(*syncNRobot)
	if !ok {
		t.Fatal("unexpected behavior type")
	}
	if r0.Err() == nil {
		t.Error("IDs scheme on anonymous system not flagged")
	}
}
