package protocol

import (
	"bytes"
	"math/rand"
	"testing"

	"waggle/internal/geom"
	"waggle/internal/sim"
)

// TestSendAllSyncN verifies the efficient one-to-all (§1): a single
// transmission on the sender's own diameter reaches every robot.
func TestSendAllSyncN(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	n := 6
	positions := randomPositions(rng, n, 6)
	for _, scheme := range []Naming{NamingSEC, NamingLex} {
		sod := scheme == NamingLex
		frames := frameSet(rng, n, sod, geom.RightHanded)
		w, eps := buildSyncNWorld(t, positions, frames, SyncNConfig{Naming: scheme})
		want := []byte("ALL1")
		if err := eps[2].SendAll(want); err != nil {
			t.Fatal(err)
		}
		got := 0
		_, ok, err := w.Run(sim.Synchronous{}, 100_000, func(*sim.World) bool {
			for i, e := range eps {
				if i == 2 {
					continue
				}
				for _, r := range e.Receive() {
					if r.From != 2 || r.To != i || !bytes.Equal(r.Payload, want) {
						t.Fatalf("scheme %v: robot %d received %+v", scheme, i, r)
					}
					got++
				}
			}
			return got >= n-1
		})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("scheme %v: only %d of %d robots received the broadcast", scheme, got, n-1)
		}
		// Efficiency: ONE frame (24 excursions for 2 bytes), not n-1.
		if bits := eps[2].SentBits(); bits != 16+8*len(want) {
			t.Errorf("scheme %v: SentBits = %d, want %d (single transmission)", scheme, bits, 16+8*len(want))
		}
	}
}

func TestSendAllAsyncN(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	n := 4
	positions := randomPositions(rng, n, 8)
	frames := frameSet(rng, n, false, geom.RightHanded)
	w, eps := buildAsyncNWorld(t, positions, frames, AsyncNConfig{})
	want := []byte{0xBC}
	if err := eps[1].SendAll(want); err != nil {
		t.Fatal(err)
	}
	received := map[int]bool{}
	_, ok, err := w.Run(sim.FirstSync{Inner: sim.NewRandomFair(7)}, 2_000_000, func(*sim.World) bool {
		for i, e := range eps {
			if i == 1 {
				continue
			}
			for _, r := range e.Receive() {
				if r.From != 1 || r.To != i || !bytes.Equal(r.Payload, want) {
					t.Fatalf("robot %d received %+v", i, r)
				}
				received[i] = true
			}
		}
		return len(received) >= n-1
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("only %v received the broadcast", received)
	}
}

func TestSendAllBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(117))
	n := 5
	positions := randomPositions(rng, n, 8)
	frames := frameSet(rng, n, false, geom.RightHanded)
	w, eps := buildBoundedWorld(t, positions, frames, 2, AsyncNConfig{})
	want := []byte{0x3E}
	if err := eps[0].SendAll(want); err != nil {
		t.Fatal(err)
	}
	received := map[int]bool{}
	_, ok, err := w.Run(sim.FirstSync{Inner: sim.NewRandomFair(9)}, 4_000_000, func(*sim.World) bool {
		for i, e := range eps {
			if i == 0 {
				continue
			}
			for _, r := range e.Receive() {
				if r.From != 0 || !bytes.Equal(r.Payload, want) {
					t.Fatalf("robot %d received %+v", i, r)
				}
				received[i] = true
			}
		}
		return len(received) >= n-1
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("only %v received the broadcast", received)
	}
}

// TestSendAllVersusBroadcastCost quantifies the §1 efficiency remark:
// SendAll costs one frame, Broadcast costs n-1 frames.
func TestSendAllVersusBroadcastCost(t *testing.T) {
	rng := rand.New(rand.NewSource(119))
	n := 6
	positions := randomPositions(rng, n, 6)
	payload := []byte("C11")
	frameBits := 16 + 8*len(payload)

	run := func(sendAll bool) int {
		frames := frameSet(rng, n, false, geom.RightHanded)
		w, eps := buildSyncNWorld(t, positions, frames, SyncNConfig{})
		var err error
		if sendAll {
			err = eps[0].SendAll(payload)
		} else {
			err = eps[0].Broadcast(payload)
		}
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		if _, _, err := w.Run(sim.Synchronous{}, 200_000, func(*sim.World) bool {
			for i, e := range eps {
				if i != 0 {
					got += len(e.Receive())
				}
			}
			return got >= n-1
		}); err != nil {
			t.Fatal(err)
		}
		return eps[0].SentBits()
	}

	unicasts := run(false)
	broadcast := run(true)
	if unicasts != (n-1)*frameBits {
		t.Errorf("Broadcast cost = %d excursions, want %d", unicasts, (n-1)*frameBits)
	}
	if broadcast != frameBits {
		t.Errorf("SendAll cost = %d excursions, want %d", broadcast, frameBits)
	}
}

func TestSendAllTooLong(t *testing.T) {
	e := newEndpoint(0, 3)
	if err := e.SendAll(make([]byte, 70_000)); err == nil {
		t.Error("oversized broadcast accepted")
	}
}

func TestEndpointSelfAndNamingStrings(t *testing.T) {
	e := newEndpoint(2, 5)
	if e.Self() != 2 {
		t.Errorf("Self = %d", e.Self())
	}
	for n, want := range map[Naming]string{
		NamingIDs: "ids", NamingLex: "lex", NamingSEC: "sec", Naming(9): "naming(?)",
	} {
		if got := n.String(); got != want {
			t.Errorf("Naming(%d).String = %q, want %q", int(n), got, want)
		}
	}
}
