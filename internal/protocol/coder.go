package protocol

import (
	"fmt"

	"waggle/internal/encoding"
	"waggle/internal/sim"
)

// asyncCoder maps outbound messages to excursion sequences and, on the
// observing side, excursions back into messages. Protocol Asyncn uses
// the direct §4.2 coder (one diameter per recipient); the §5
// bounded-slice variant prepends the recipient's index on a small set of
// shared diameters.
type asyncCoder interface {
	// encode turns one message into the excursion sequence transmitting
	// it.
	encode(geo *swarmGeometry, msg queuedMessage) ([]txBit, error)
	// newSink builds the per-sender excursion consumer.
	newSink(geo *swarmGeometry, sender int) excursionSink
}

// excursionSink consumes the classified excursions of one sender,
// returning each completed message once.
type excursionSink interface {
	consume(k int, side sideOf) (Received, bool)
}

// standardCoder is the §4.2 scheme: a bit's diameter identifies the
// recipient, its side the value.
type standardCoder struct{}

var _ asyncCoder = standardCoder{}

func (standardCoder) encode(geo *swarmGeometry, msg queuedMessage) ([]txBit, error) {
	frame, err := encoding.EncodeFrame(msg.payload)
	if err != nil {
		return nil, err
	}
	diameter := geo.recipientDiameter(geo.txLabel(msg.to))
	bits := make([]txBit, len(frame))
	for i, b := range frame {
		side := sideOf(0)
		if b {
			side = 1
		}
		bits[i] = txBit{diameter: diameter, side: side}
	}
	return bits, nil
}

func (standardCoder) newSink(geo *swarmGeometry, sender int) excursionSink {
	return &standardSink{geo: geo, sender: sender, rx: make(map[int]*encoding.FrameDecoder)}
}

// standardSink demultiplexes a sender's bits by recipient diameter.
type standardSink struct {
	geo    *swarmGeometry
	sender int
	rx     map[int]*encoding.FrameDecoder
}

func (s *standardSink) consume(k int, side sideOf) (Received, bool) {
	label, ok := s.geo.diameterRecipient(k)
	if !ok || label >= len(s.geo.homeOf[s.sender]) {
		return Received{}, false
	}
	to := s.geo.rxRecipient(s.sender, label)
	dec := s.rx[to]
	if dec == nil {
		dec = encoding.NewFrameDecoder()
		s.rx[to] = dec
	}
	if msg, done := dec.Push(side == 1); done {
		return Received{From: s.sender, To: to, Payload: msg}, true
	}
	return Received{}, false
}

// boundedCoder is the §5 scheme for granulars with a bounded number of
// distinguishable directions: diameter 0 is κ, diameter 1 carries the
// payload bits (side = value), and diameters 2..K+1 carry base-K digits
// of the recipient's index, sent as a ⌈log_K n⌉-symbol prelude before
// every message. It trades slices for steps: the prelude costs
// ⌈log_K n⌉ extra excursions per message (experiment C4).
type boundedCoder struct {
	k int
}

var _ asyncCoder = boundedCoder{}

func (c boundedCoder) encode(geo *swarmGeometry, msg queuedMessage) ([]txBit, error) {
	digits, err := encoding.EncodeIndex(geo.txLabel(msg.to), len(geo.p0), c.k)
	if err != nil {
		return nil, err
	}
	frame, err := encoding.EncodeFrame(msg.payload)
	if err != nil {
		return nil, err
	}
	bits := make([]txBit, 0, len(digits)+len(frame))
	for _, d := range digits {
		bits = append(bits, txBit{diameter: 2 + d, side: 0})
	}
	for _, b := range frame {
		side := sideOf(0)
		if b {
			side = 1
		}
		bits = append(bits, txBit{diameter: 1, side: side})
	}
	return bits, nil
}

func (c boundedCoder) newSink(geo *swarmGeometry, sender int) excursionSink {
	return &boundedSink{
		geo:        geo,
		sender:     sender,
		k:          c.k,
		needDigits: encoding.IndexCodeLen(len(geo.p0), c.k),
		rx:         encoding.NewFrameDecoder(),
	}
}

// boundedSink reassembles index prelude + payload frame.
type boundedSink struct {
	geo        *swarmGeometry
	sender     int
	k          int
	needDigits int
	digits     []int
	rx         *encoding.FrameDecoder
}

func (s *boundedSink) consume(k int, side sideOf) (Received, bool) {
	if k >= 2 {
		// Index digit. A fresh prelude resets any stale state.
		if len(s.digits) >= s.needDigits {
			s.digits = s.digits[:0]
		}
		s.digits = append(s.digits, k-2)
		return Received{}, false
	}
	// Payload bit (diameter 1).
	msg, done := s.rx.Push(side == 1)
	if !done {
		return Received{}, false
	}
	label, err := encoding.DecodeIndex(s.digits, s.k)
	s.digits = s.digits[:0]
	if err != nil || label >= len(s.geo.homeOf[s.sender]) {
		return Received{}, false
	}
	return Received{From: s.sender, To: s.geo.rxRecipient(s.sender, label), Payload: msg}, true
}

// NewAsyncBounded builds the §5 bounded-slice asynchronous protocol:
// like Protocol Asyncn but with only K+2 diameters (κ, one payload
// diameter, K index diameters) regardless of the swarm size, with the
// recipient's index transmitted as a ⌈log_K n⌉-symbol prelude. K must be
// at least 2.
func NewAsyncBounded(n, k int, cfg AsyncNConfig) ([]sim.Behavior, []*Endpoint, error) {
	if k < 2 {
		return nil, nil, fmt.Errorf("protocol: bounded-slice base %d too small", k)
	}
	behaviors, endpoints, err := NewAsyncN(n, cfg)
	if err != nil {
		return nil, nil, err
	}
	for _, b := range behaviors {
		robot, ok := b.(*asyncNRobot)
		if !ok {
			return nil, nil, fmt.Errorf("protocol: unexpected behavior type %T", b)
		}
		robot.coder = boundedCoder{k: k}
		robot.diametersOverride = k + 2
	}
	return behaviors, endpoints, nil
}
