package protocol

import (
	"bytes"
	"math/rand"
	"testing"

	"waggle/internal/geom"
	"waggle/internal/sim"
)

// TestSyncNLevelsDelivery composes §3.1's amplitude levels with the
// n-robot routing: signed excursion lengths carry log2(K) bits each.
func TestSyncNLevelsDelivery(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	positions := randomPositions(rng, 6, 6)
	for _, k := range []int{2, 4, 16} {
		frames := frameSet(rng, 6, false, geom.RightHanded)
		w, eps := buildSyncNWorld(t, positions, frames, SyncNConfig{Naming: NamingSEC, Levels: k})
		want := []byte{0xF0, 0x0D, byte(k)}
		if err := eps[1].Send(4, want); err != nil {
			t.Fatal(err)
		}
		got := runUntilDelivered(t, w, sim.Synchronous{}, eps, 1, 100_000)
		if got[0].From != 1 || got[0].To != 4 || !bytes.Equal(got[0].Payload, want) {
			t.Errorf("k=%d: received %+v", k, got[0])
		}
	}
}

// TestSyncNLevelsSpeedup: K levels must cut delivery steps by log2(K).
func TestSyncNLevelsSpeedup(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	positions := randomPositions(rng, 5, 6)
	msg := bytes.Repeat([]byte{0x3C}, 8)
	stepsFor := func(levels int) int {
		frames := frameSet(rng, 5, false, geom.RightHanded)
		w, eps := buildSyncNWorld(t, positions, frames, SyncNConfig{Naming: NamingSEC, Levels: levels})
		if err := eps[0].Send(2, msg); err != nil {
			t.Fatal(err)
		}
		steps, ok, err := w.Run(sim.Synchronous{}, 100_000, func(*sim.World) bool {
			return len(eps[2].Receive()) > 0
		})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("levels=%d: not delivered", levels)
		}
		return steps
	}
	plain := stepsFor(0)
	leveled := stepsFor(16)
	ratio := float64(plain) / float64(leveled)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("16-level speedup = %.2f (plain %d, leveled %d), want about 4", ratio, plain, leveled)
	}
}

// TestSyncNLevelsCollisionSafe: every leveled excursion still stays
// inside the granular.
func TestSyncNLevelsCollisionSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	positions := randomPositions(rng, 6, 5)
	frames := frameSet(rng, 6, false, geom.RightHanded)
	w, eps := buildSyncNWorld(t, positions, frames, SyncNConfig{Naming: NamingSEC, Levels: 8})
	for i := range eps {
		if err := eps[i].Broadcast(bytes.Repeat([]byte{byte(0x11 * i)}, 3)); err != nil {
			t.Fatal(err)
		}
	}
	want := len(eps) * (len(eps) - 1)
	runUntilDelivered(t, w, sim.Synchronous{}, eps, want, 400_000)
	homes := w.Trace().Initial()
	radii := granularRadii(homes)
	for _, s := range w.Trace().Steps() {
		for i, p := range s.Positions {
			if p.Dist(homes[i]) > radii[i]+1e-9 {
				t.Fatalf("robot %d left its granular at t=%d", i, s.Time)
			}
		}
	}
}

func TestSyncNLevelsValidation(t *testing.T) {
	if _, _, err := NewSyncN(4, SyncNConfig{Levels: 3}); err == nil {
		t.Error("non-power-of-two level count accepted")
	}
}
