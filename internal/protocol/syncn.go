package protocol

import (
	"fmt"

	"waggle/internal/encoding"
	"waggle/internal/geom"
	"waggle/internal/sim"
)

// SyncNConfig configures the n-robot synchronous protocols: §3.2
// (observable IDs + sense of direction), §3.3 (anonymous + sense of
// direction) and §3.4 (anonymous, chirality only), selected by Naming.
type SyncNConfig struct {
	// Naming selects the recipient-addressing scheme.
	Naming Naming
	// AmplitudeFrac is the excursion length as a fraction of the
	// sender's granular radius (default 0.6, keeping every excursion
	// strictly inside the granular for collision avoidance).
	AmplitudeFrac float64
	// Levels composes the §3.1 amplitude-level remark with the n-robot
	// routing: a signed excursion length on the recipient's diameter
	// carries log2(Levels) bits per excursion instead of one. Must be a
	// power of two; 0 selects the paper's plain one-bit coding. Assumes
	// the robots share the protocol configuration (in particular the
	// amplitude fraction), the n-robot analogue of §3.1's "each robot
	// knows the maximum distance the other robot can cover".
	Levels int
	// SigmaLocal optionally bounds each robot's per-activation move in
	// its own frame units (0 or missing = effectively unbounded). The
	// excursion amplitude is capped to it.
	SigmaLocal []float64
}

// normalizeSyncNConfig fills defaults and validates.
func normalizeSyncNConfig(n int, cfg SyncNConfig) (SyncNConfig, error) {
	if n < 2 {
		return cfg, fmt.Errorf("protocol: SyncN needs >= 2 robots, got %d", n)
	}
	if cfg.Naming == 0 {
		cfg.Naming = NamingSEC
	}
	if cfg.AmplitudeFrac == 0 {
		cfg.AmplitudeFrac = defaultSyncNAmplitudeFrac
	}
	if cfg.AmplitudeFrac <= 0 || cfg.AmplitudeFrac >= 1 {
		return cfg, fmt.Errorf("protocol: amplitude fraction %v outside (0, 1)", cfg.AmplitudeFrac)
	}
	if cfg.Levels != 0 {
		if _, err := encoding.NewLevels(cfg.Levels); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

const (
	defaultSyncNAmplitudeFrac = 0.6
	// eventTolFrac is the decoder's movement-detection threshold as a
	// fraction of the sender's granular radius. Movements in the SSM
	// simulation are exact, so the threshold only needs to clear float
	// noise while staying below any plausible amplitude.
	eventTolFrac = 1e-7
)

// NewSyncN builds behaviors and endpoints for an n-robot synchronous
// swarm. The robots must run under a synchronous scheduler; frames must
// share handedness (chirality), and for the IDs and Lex schemes they
// must also share the +y direction (sense of direction).
func NewSyncN(n int, cfg SyncNConfig) ([]sim.Behavior, []*Endpoint, error) {
	cfg, err := normalizeSyncNConfig(n, cfg)
	if err != nil {
		return nil, nil, err
	}
	behaviors := make([]sim.Behavior, n)
	endpoints := make([]*Endpoint, n)
	for i := 0; i < n; i++ {
		endpoints[i] = newEndpoint(i, n)
		var sigma float64
		if i < len(cfg.SigmaLocal) {
			sigma = cfg.SigmaLocal[i]
		}
		behaviors[i] = &syncNRobot{cfg: cfg, endpoint: endpoints[i], sigma: sigma}
	}
	return behaviors, endpoints, nil
}

// txBit is one queued excursion: a value on a diameter. mag scales the
// excursion amplitude for level coding (0 means the full amplitude —
// plain one-bit coding).
type txBit struct {
	diameter int
	side     sideOf
	mag      float64
}

// syncNRobot is one robot of the synchronous n-robot protocols. On even
// activations it performs at most one excursion (diameter = recipient,
// side = bit) inside its granular; on odd activations it returns home
// and decodes every other robot's visible excursion.
type syncNRobot struct {
	cfg      SyncNConfig
	endpoint *Endpoint
	sigma    float64

	rk          reckoner
	geo         *swarmGeometry
	activations int
	amplitude   float64
	cfgErr      error
	codec       encoding.Levels
	hasLevels   bool

	txBits []txBit
	rx     map[[2]int]*encoding.FrameDecoder
}

var _ sim.Behavior = (*syncNRobot)(nil)

// Step implements sim.Behavior.
func (r *syncNRobot) Step(view sim.View) geom.Point {
	count := r.activations
	r.activations++
	if !r.rk.initialized() {
		r.initFrom(view)
	}
	if count%2 == 1 {
		// The previous even step's excursion has now been observed by
		// every robot; a drained transmit queue means delivery.
		r.decodeAll(view)
		if len(r.txBits) == 0 && r.endpoint.PendingMessages() == 0 {
			r.endpoint.inflight = false
		}
		return r.rk.moveBy(geom.Point{}.Sub(r.rk.selfInit()))
	}
	if r.cfgErr != nil {
		return r.rk.stay()
	}
	bit, ok := r.nextBit()
	if !ok {
		return r.rk.stay() // silent
	}
	dir := r.geo.slicers[r.geo.self].direction(bit.diameter, bit.side)
	mag := bit.mag
	if mag == 0 {
		mag = 1
	}
	if r.hasLevels {
		r.endpoint.sentBits += r.codec.BitsPerSymbol()
	} else {
		r.endpoint.sentBits++
	}
	return r.rk.moveBy(dir.Scale(r.amplitude * mag))
}

// Err returns the configuration error detected at init, if any.
func (r *syncNRobot) Err() error { return r.cfgErr }

func (r *syncNRobot) initFrom(view sim.View) {
	r.rk.init()
	r.geo = buildSwarmGeometry(view, r.cfg.Naming, false, 0, r.endpoint.radiiCache())
	r.cfgErr = r.geo.err
	radius := r.geo.radii[view.Self]
	r.amplitude = r.cfg.AmplitudeFrac * radius
	if r.sigma > 0 && r.amplitude > r.sigma {
		r.amplitude = r.sigma
	}
	if r.cfg.Levels != 0 {
		codec, err := encoding.NewLevels(r.cfg.Levels)
		if err != nil {
			r.cfgErr = err
		} else {
			r.codec, r.hasLevels = codec, true
		}
	}
	minMag := 1.0
	if r.hasLevels {
		minMag = 1 / float64(2*r.cfg.Levels)
	}
	if r.cfgErr == nil && r.amplitude*minMag < 10*eventTolFrac*radius {
		r.cfgErr = fmt.Errorf("%w: amplitude %v invisible against granular %v",
			ErrAmplitudeExceedsSigma, r.amplitude*minMag, radius)
	}
	r.rx = make(map[[2]int]*encoding.FrameDecoder)
}

// nextBit produces the next excursion, refilling from the outbox.
func (r *syncNRobot) nextBit() (txBit, bool) {
	for len(r.txBits) == 0 {
		msg, ok := r.endpoint.pop()
		if !ok {
			r.endpoint.inflight = false
			return txBit{}, false
		}
		frame, err := encoding.EncodeFrame(msg.payload)
		if err != nil {
			continue
		}
		diameter := r.geo.recipientDiameter(r.geo.txLabel(msg.to))
		if r.hasLevels {
			for _, sym := range r.codec.SymbolsFromBits(frame) {
				off, err := r.codec.Offset(sym)
				if err != nil {
					continue
				}
				bit := txBit{diameter: diameter, mag: off}
				if off < 0 {
					bit.side, bit.mag = 1, -off
				}
				r.txBits = append(r.txBits, bit)
			}
		} else {
			r.txBits = make([]txBit, len(frame))
			for i, b := range frame {
				side := sideOf(0)
				if b {
					side = 1
				}
				r.txBits[i] = txBit{diameter: diameter, side: side}
			}
		}
		r.endpoint.inflight = true
	}
	bit := r.txBits[0]
	r.txBits = r.txBits[1:]
	return bit, true
}

// decodeAll scans every other robot for a visible excursion. In the
// synchronous protocol all robots share the even/odd parity, so every
// excursion is visible at exactly one odd instant.
func (r *syncNRobot) decodeAll(view sim.View) {
	if r.geo == nil {
		return
	}
	for j := range view.Points {
		if j == view.Self || !r.geo.canDecode(j) {
			continue
		}
		d := view.Points[j].Sub(r.rk.toCurrent(r.geo.p0[j]))
		if d.Len() <= eventTolFrac*r.geo.radii[j] {
			continue
		}
		k, side := r.geo.slicers[j].classify(d)
		label, ok := r.geo.diameterRecipient(k)
		if !ok || label >= len(r.geo.homeOf[j]) {
			continue
		}
		to := r.geo.rxRecipient(j, label)
		key := [2]int{j, to}
		dec := r.rx[key]
		if dec == nil {
			dec = encoding.NewFrameDecoder()
			r.rx[key] = dec
		}
		if !r.hasLevels {
			if msg, done := dec.Push(side == 1); done {
				r.endpoint.deliver(Received{From: j, To: to, Payload: msg})
			}
			continue
		}
		// Level coding: the signed excursion length along the diameter
		// carries a whole symbol. Amplitudes are ratios against the
		// sender's granular radius, hence frame-invariant.
		signed := d.Len() / (r.cfg.AmplitudeFrac * r.geo.radii[j])
		if side == 1 {
			signed = -signed
		}
		sym := r.codec.Symbol(signed)
		for _, bit := range r.codec.BitsFromSymbols([]int{sym}) {
			msg, done := dec.Push(bit)
			if !done {
				continue
			}
			r.endpoint.deliver(Received{From: j, To: to, Payload: msg})
			// Discard the zero-padding of the frame's final symbol.
			break
		}
	}
}
