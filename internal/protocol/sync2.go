package protocol

import (
	"errors"
	"fmt"

	"waggle/internal/encoding"
	"waggle/internal/geom"
	"waggle/internal/sim"
)

// Sync2Config configures the two-robot synchronous protocol of §3.1.
type Sync2Config struct {
	// Levels selects the amplitude-level extension (§3.1 remark): a
	// power of two >= 2. Zero means plain one-bit-per-move coding
	// (equivalent to Levels == 2 in efficiency accounting but using the
	// full swing). Using k levels transmits log2(k) bits per excursion.
	Levels int
	// AmplitudeFrac is the maximum swing as a fraction of the initial
	// separation (default 0.25). Both robots derive the same world-space
	// amplitude from their own views, so the value is unit-free.
	AmplitudeFrac float64
	// SigmaLocal bounds each robot's per-activation move in its own
	// frame units, index-aligned with the two behaviors. The amplitude
	// must not exceed it; NewSync2 cannot check (the separation is only
	// observed at run time), so the behavior verifies at its first
	// activation and records a configuration error on its endpoint.
	SigmaLocal [2]float64
}

// ErrAmplitudeExceedsSigma is recorded on an endpoint when the
// configured swing cannot be covered in one activation, which would
// desynchronise the parity-based coding.
var ErrAmplitudeExceedsSigma = errors.New("protocol: amplitude exceeds sigma")

const (
	defaultAmplitudeFrac = 0.25
	// sync2EventFrac is the decoder's movement-detection threshold as a
	// fraction of the swing amplitude.
	sync2EventFrac = 0.02
)

// NewSync2 builds the behaviors and endpoints for the two-robot
// synchronous protocol. Behavior i drives robot i; the robots must be
// run under a synchronous scheduler.
func NewSync2(cfg Sync2Config) ([]sim.Behavior, []*Endpoint, error) {
	if cfg.AmplitudeFrac == 0 {
		cfg.AmplitudeFrac = defaultAmplitudeFrac
	}
	if cfg.AmplitudeFrac < 0 || cfg.AmplitudeFrac >= 0.5 {
		return nil, nil, fmt.Errorf("protocol: amplitude fraction %v outside (0, 0.5)", cfg.AmplitudeFrac)
	}
	levels := cfg.Levels
	if levels == 0 {
		levels = 2
	}
	codec, err := encoding.NewLevels(levels)
	if err != nil {
		return nil, nil, err
	}
	endpoints := []*Endpoint{newEndpoint(0, 2), newEndpoint(1, 2)}
	behaviors := make([]sim.Behavior, 2)
	for i := 0; i < 2; i++ {
		behaviors[i] = &sync2Robot{
			cfg:      cfg,
			codec:    codec,
			endpoint: endpoints[i],
			sigma:    cfg.SigmaLocal[i],
		}
	}
	return behaviors, endpoints, nil
}

// sync2Robot is one robot of the §3.1 protocol: on even activations it
// swings perpendicular to the robot-robot axis (right of the direction
// towards the peer = symbol high bit 0, per the shared chirality), on
// odd activations it returns home. It simultaneously decodes the peer's
// swings.
type sync2Robot struct {
	cfg      Sync2Config
	codec    encoding.Levels
	endpoint *Endpoint
	sigma    float64

	rk          reckoner
	activations int

	// Geometry fixed at init (init-local coordinates).
	peerHome  geom.Point
	rightAxis geom.Vec // unit vector: "right of the direction towards the peer"
	amplitude float64
	cfgErr    error

	// Transmit state.
	txSymbols []int

	// Receive state.
	rx *encoding.FrameDecoder
}

var _ sim.Behavior = (*sync2Robot)(nil)

// Step implements sim.Behavior.
func (r *sync2Robot) Step(view sim.View) geom.Point {
	count := r.activations
	r.activations++
	if !r.rk.initialized() {
		r.initFrom(view)
	}
	if count%2 == 1 {
		// Odd step: observe the peer's swing, then come back home. A
		// transmission completes here: the swing of the previous even
		// step has now been observed by the peer.
		r.decode(view)
		if len(r.txSymbols) == 0 && r.endpoint.PendingMessages() == 0 {
			r.endpoint.inflight = false
		}
		return r.rk.moveBy(geom.Point{}.Sub(r.rk.selfInit()))
	}
	// Even step: optionally transmit one symbol. (The peer is home on
	// even observations; nothing to decode.)
	if r.cfgErr != nil {
		return r.rk.stay()
	}
	sym, ok := r.nextSymbol()
	if !ok {
		return r.rk.stay() // silent: no movement without pending messages
	}
	off, err := r.codec.Offset(sym)
	if err != nil {
		// Unreachable: symbols come from the codec itself.
		return r.rk.stay()
	}
	delta := r.rightAxis.Scale(off * r.amplitude)
	r.endpoint.sentBits += r.codec.BitsPerSymbol()
	return r.rk.moveBy(delta)
}

// Err returns the configuration error detected at init, if any.
func (r *sync2Robot) Err() error { return r.cfgErr }

func (r *sync2Robot) initFrom(view sim.View) {
	r.rk.init()
	r.peerHome = view.Points[view.Other()]
	toPeer := r.peerHome.Sub(geom.Point{}).Unit()
	// Right of the direction towards the peer; chirality makes both
	// robots agree on this half-plane.
	r.rightAxis = toPeer.Rotate(-halfPi)
	r.amplitude = r.cfg.AmplitudeFrac * r.peerHome.Sub(geom.Point{}).Len()
	if r.sigma > 0 && r.amplitude > r.sigma {
		r.cfgErr = fmt.Errorf("%w: swing %v > sigma %v", ErrAmplitudeExceedsSigma, r.amplitude, r.sigma)
	}
	r.rx = encoding.NewFrameDecoder()
}

// nextSymbol produces the next symbol to transmit, pulling a new message
// from the outbox when the current one is exhausted.
func (r *sync2Robot) nextSymbol() (int, bool) {
	for len(r.txSymbols) == 0 {
		msg, ok := r.endpoint.pop()
		if !ok {
			r.endpoint.inflight = false
			return 0, false
		}
		bits, err := encoding.EncodeFrame(msg.payload)
		if err != nil {
			continue // reject oversized message (validated at Send; defensive)
		}
		_ = msg.to // two-robot protocol: the recipient is always the peer
		r.txSymbols = r.codec.SymbolsFromBits(bits)
		r.endpoint.inflight = true
	}
	sym := r.txSymbols[0]
	r.txSymbols = r.txSymbols[1:]
	return sym, true
}

// decode inspects the peer's current displacement from its home and, if
// it is swinging, recovers the transmitted symbol.
func (r *sync2Robot) decode(view sim.View) {
	peer := view.Points[view.Other()]
	d := peer.Sub(r.rk.toCurrent(r.peerHome))
	if d.Len() <= sync2EventFrac*r.amplitude {
		return
	}
	// The peer swings relative to ITS axis: right of the direction from
	// the peer towards us.
	peerRight := geom.Point{}.Sub(r.peerHome).Unit().Rotate(-halfPi)
	norm := d.Dot(peerRight) / r.amplitude
	sym := r.codec.Symbol(norm)
	for _, bit := range r.codec.BitsFromSymbols([]int{sym}) {
		msg, ok := r.rx.Push(bit)
		if !ok {
			continue
		}
		r.endpoint.deliver(Received{
			From:    view.Other(),
			To:      view.Self,
			Payload: msg,
		})
		// The sender pads the final symbol of a frame with zero bits;
		// discard the rest of this symbol so the padding cannot bleed
		// into the next frame's header.
		break
	}
}

// halfPi is π/2; rotating by -halfPi is the chirality-shared "to the
// right of" operator.
const halfPi = 1.5707963267948966
