package queen

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"waggle"
	"waggle/internal/retry"
	"waggle/internal/sweep"
)

// fastRequeue keeps test requeues instant.
var fastRequeue = retry.Policy{MaxAttempts: 2, Base: time.Nanosecond, Cap: time.Nanosecond}

// chaosReference renders the single-process chaos report for the
// named scenarios — the byte-identity oracle.
func chaosReference(t *testing.T, seed int64, names []string) []byte {
	t.Helper()
	results := map[string]sweep.ChaosResult{}
	for _, name := range names {
		sc, err := sweep.FindChaosScenario(name, seed)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sweep.RunChaosScenarioObserved(sc, waggle.EngineSequential, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		results[name] = *r
	}
	report, err := sweep.MergeChaosReport(seed, waggle.EngineSequential, names, results)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCampaignMergeByteIdentity runs a 3-scenario chaos campaign
// through the full HTTP protocol with two concurrent workers and
// requires the merged report to be byte-identical to the
// single-process run.
func TestCampaignMergeByteIdentity(t *testing.T) {
	names := []string{"crash-sync", "radio-outage", "combined"}
	out := filepath.Join(t.TempDir(), "report.json")
	q, err := New(Options{
		Spec: Spec{Kind: "chaos", Seed: 1, Engine: "sequential", Names: names},
		Out:  out,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	defer q.Stop()
	mux := http.NewServeMux()
	q.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = RunWorker(WorkerOptions{Base: srv.URL, Name: "w" + string(rune('0'+i)), Dir: t.TempDir()})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	select {
	case <-q.Done():
	case <-time.After(time.Minute):
		t.Fatal("campaign did not finish")
	}
	if err := q.Err(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if want := chaosReference(t, 1, names); !bytes.Equal(got, want) {
		t.Fatalf("merged report differs from single-process run\n got: %s\nwant: %s", got, want)
	}
	st := q.status()
	if st.Completed != len(names) || !st.Merged {
		t.Fatalf("status after completion: %+v", st)
	}
}

// TestSweepCampaignMergeByteIdentity: the sweep kind merges experiment
// tables in request order, matching the single-process report.
func TestSweepCampaignMergeByteIdentity(t *testing.T) {
	names := []string{"silence", "drift"}
	q, err := New(Options{Spec: Spec{Kind: "sweep", Names: names}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	q.Start()
	defer q.Stop()
	mux := http.NewServeMux()
	q.Mount(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	if err := RunWorker(WorkerOptions{Base: srv.URL, Name: "w0", Dir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	<-q.Done()
	if err := q.Err(); err != nil {
		t.Fatal(err)
	}

	ref := sweep.NewSweepReport()
	for _, n := range names {
		tbl, err := sweep.Run(n)
		if err != nil {
			t.Fatal(err)
		}
		ref.Add(n, tbl)
	}
	var want bytes.Buffer
	if err := ref.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q.Report(), want.Bytes()) {
		t.Fatalf("merged sweep report differs from single-process run\n got: %s\nwant: %s", q.Report(), want.Bytes())
	}
}

// TestLeaseExpiryStealsSnapshot drives the protocol by hand: worker A
// leases a shard, banks a snapshot, and goes silent; after the TTL
// the reaper requeues the shard, and worker B's lease receives A's
// snapshot — a steal — while A's late heartbeat is rejected.
func TestLeaseExpiryStealsSnapshot(t *testing.T) {
	q, err := New(Options{
		Spec:    Spec{Kind: "chaos", Seed: 1, Names: []string{"crash-sync"}},
		Requeue: fastRequeue,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Stop()

	grantA, wait, err := q.lease("workerA")
	if err != nil || grantA == nil {
		t.Fatalf("lease A: grant=%v wait=%v err=%v", grantA, wait, err)
	}
	if len(grantA.Snapshot) != 0 {
		t.Fatal("first lease carried a snapshot")
	}
	if !q.heartbeat(grantA.Name, grantA.Token, 60, []byte("progress-blob")) {
		t.Fatal("live heartbeat rejected")
	}

	// No more heartbeats from A: the reaper (driven by hand with a
	// future clock) expires the lease.
	q.expireLeases(time.Now().Add(time.Hour))
	if got := q.m.LeaseExpired.Value(); got != 1 {
		t.Fatalf("lease_expired = %d, want 1", got)
	}
	if q.heartbeat(grantA.Name, grantA.Token, 120, nil) {
		t.Fatal("heartbeat on an expired lease accepted")
	}

	grantB, _, err := q.lease("workerB")
	if err != nil || grantB == nil {
		t.Fatalf("lease B: %v %v", grantB, err)
	}
	if !bytes.Equal(grantB.Snapshot, []byte("progress-blob")) {
		t.Fatalf("steal did not hand over the banked snapshot: %q", grantB.Snapshot)
	}
	if grantB.Token == grantA.Token {
		t.Fatal("re-grant reused the dead lease's token")
	}
	if got := q.m.Stolen.Value(); got != 1 {
		t.Fatalf("stolen = %d, want 1", got)
	}
	if got := q.m.Retried.Value(); got != 1 {
		t.Fatalf("retried = %d, want 1", got)
	}
}

// TestCompleteIsTokenBlindAndIdempotent: a stale lease's result is
// accepted (results are deterministic) and a duplicate completion is
// a no-op.
func TestCompleteTokenBlindIdempotent(t *testing.T) {
	q, err := New(Options{
		Spec:    Spec{Kind: "chaos", Seed: 1, Names: []string{"crash-sync"}},
		Requeue: fastRequeue,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Stop()
	grantA, _, _ := q.lease("workerA")
	q.expireLeases(time.Now().Add(time.Hour))
	if _, _, err := q.lease("workerB"); err != nil {
		t.Fatal(err)
	}
	// A's result arrives after the shard was re-leased to B.
	res := mustResult(t, "crash-sync")
	if err := q.complete(grantA.Name, res); err != nil {
		t.Fatalf("stale-lease completion rejected: %v", err)
	}
	if err := q.complete(grantA.Name, res); err != nil {
		t.Fatalf("duplicate completion: %v", err)
	}
	if got := q.m.Completed.Value(); got != 1 {
		t.Fatalf("completed = %d, want 1", got)
	}
	<-q.Done()
	if q.Err() != nil || q.Report() == nil {
		t.Fatalf("campaign not cleanly finished: err=%v", q.Err())
	}
}

// TestAttemptsExhaustedFailsCampaign: a shard that keeps dying runs
// out of attempts and the campaign fails loudly instead of spinning.
func TestAttemptsExhaustedFailsCampaign(t *testing.T) {
	q, err := New(Options{
		Spec:          Spec{Kind: "chaos", Seed: 1, Names: []string{"crash-sync"}},
		ShardAttempts: 2,
		Requeue:       fastRequeue,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Stop()
	for i := 0; i < 2; i++ {
		grant, _, err := q.lease("flaky")
		if err != nil {
			t.Fatalf("lease %d: %v", i, err)
		}
		if grant == nil {
			// Backoff gating; retry shortly.
			time.Sleep(time.Millisecond)
			i--
			continue
		}
		q.expireLeases(time.Now().Add(time.Hour))
	}
	select {
	case <-q.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("exhausted campaign did not fail")
	}
	if q.Err() == nil {
		t.Fatal("campaign failure not recorded")
	}
	if _, _, err := q.lease("flaky"); err == nil {
		t.Fatal("lease against a failed campaign succeeded")
	}
}

// TestJournalRestartResumes: a queen that dies mid-campaign is rebuilt
// from its journal with completed shards seated, and the resumed
// campaign's merged report is byte-identical to the single-process
// run.
func TestJournalRestartResumes(t *testing.T) {
	names := []string{"crash-sync", "radio-outage"}
	dir := t.TempDir()
	journal := filepath.Join(dir, "queen.journal")
	out := filepath.Join(dir, "report.json")

	q1, err := New(Options{
		Spec:    Spec{Kind: "chaos", Seed: 1, Engine: "sequential", Names: names},
		Journal: journal,
		Out:     out,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	grant, _, err := q1.lease("w0")
	if err != nil {
		t.Fatal(err)
	}
	if err := q1.complete(grant.Name, mustResult(t, grant.Name)); err != nil {
		t.Fatal(err)
	}
	q1.Stop() // queen dies with one shard done, one pending

	q2, err := NewFromJournal(journal, Options{Out: out}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Stop()
	st := q2.status()
	if st.Completed != 1 || st.Pending != 1 {
		t.Fatalf("restarted queen state: %+v", st)
	}
	grant2, _, err := q2.lease("w1")
	if err != nil {
		t.Fatal(err)
	}
	if grant2.Name == grant.Name {
		t.Fatalf("restarted queen re-dispatched completed shard %q", grant.Name)
	}
	if err := q2.complete(grant2.Name, mustResult(t, grant2.Name)); err != nil {
		t.Fatal(err)
	}
	<-q2.Done()
	if err := q2.Err(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if want := chaosReference(t, 1, names); !bytes.Equal(got, want) {
		t.Fatalf("resumed campaign report differs\n got: %s\nwant: %s", got, want)
	}

	// A journal for a different campaign must be refused.
	if _, err := NewFromJournal(journal, Options{Spec: Spec{Kind: "sweep", Names: []string{"silence"}}}, nil); err == nil {
		t.Fatal("journal adopted into a mismatched campaign")
	}
}

// TestJournalRestartAfterCompletion: resuming a fully-finished journal
// immediately reports done with the merged report rebuilt.
func TestJournalRestartAfterCompletion(t *testing.T) {
	names := []string{"crash-sync"}
	dir := t.TempDir()
	journal := filepath.Join(dir, "queen.journal")
	q1, err := New(Options{
		Spec:    Spec{Kind: "chaos", Seed: 1, Engine: "sequential", Names: names},
		Journal: journal,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	grant, _, _ := q1.lease("w0")
	if err := q1.complete(grant.Name, mustResult(t, grant.Name)); err != nil {
		t.Fatal(err)
	}
	<-q1.Done()
	report := q1.Report()
	q1.Stop()

	q2, err := NewFromJournal(journal, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Stop()
	select {
	case <-q2.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("finished journal did not resume as done")
	}
	if !bytes.Equal(q2.Report(), report) {
		t.Fatal("rebuilt report differs from the original")
	}
}

// mustResult computes one scenario's canonical result as its JSON
// completion payload.
func mustResult(t *testing.T, name string) json.RawMessage {
	t.Helper()
	sc, err := sweep.FindChaosScenario(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sweep.RunChaosScenarioObserved(sc, waggle.EngineSequential, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
