package queen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"waggle/internal/retry"
	"waggle/internal/sweep"
)

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Base is the queen's base URL (http://host:port).
	Base string
	// Name identifies this worker in leases and metrics.
	Name string
	// Stall inserts a dwell after each banked snapshot — a test hook
	// that widens the window in which killing the worker leaves
	// migratable progress behind. Zero in production.
	Stall time.Duration
	// Dir holds the worker's scratch checkpoint chains (default: a
	// fresh temp dir, removed on return).
	Dir string
	// Client overrides the HTTP client (default 30s timeout).
	Client *http.Client
}

// leasePolicy covers the two ways a lease call legitimately stalls: an
// idle queen (503 + Retry-After, hinted) and a queen mid-restart
// (connection refused). Generous attempts with a tight cap bound the
// total idle wait without giving up during a normal restart window.
var leasePolicy = retry.Policy{MaxAttempts: 300, Base: 25 * time.Millisecond, Cap: 500 * time.Millisecond}

// finishPolicy covers complete/fail delivery: the result of a finished
// shard must not be lost to a transient network error or a queen
// restart, so retry hard before surfacing an error.
var finishPolicy = retry.Policy{MaxAttempts: 30, Base: 50 * time.Millisecond, Cap: time.Second}

// RunWorker joins the queen at opts.Base and executes shards until the
// campaign is done: lease, drive in checkpoint-cadence chunks,
// heartbeat each chunk with a banked snapshot, complete. A 409 from a
// heartbeat means the lease was lost (this worker was presumed dead
// and the shard stolen) — the shard is abandoned and the loop leases
// anew. Worker processes never address each other: the queen's banked
// snapshots are the only channel between them.
func RunWorker(opts WorkerOptions) error {
	if opts.Name == "" {
		opts.Name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.Dir == "" {
		dir, err := os.MkdirTemp("", "waggle-queen-worker-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		opts.Dir = dir
	}
	w := &worker{opts: opts}
	for {
		lr, err := w.lease()
		if err != nil {
			return err
		}
		if lr.Done {
			return nil
		}
		if err := w.runShard(lr); err != nil {
			return err
		}
	}
}

type worker struct {
	opts WorkerOptions
}

// lease claims the next shard, sleeping through idle 503s and queen
// restarts.
func (w *worker) lease() (*LeaseResponse, error) {
	var lr LeaseResponse
	err := retry.Do(leasePolicy, int64(os.Getpid()), nil, func(int) error {
		return w.post("/queen/v1/lease", LeaseRequest{Worker: w.opts.Name}, &lr)
	})
	if err != nil {
		return nil, fmt.Errorf("queen worker %s: lease: %w", w.opts.Name, err)
	}
	return &lr, nil
}

// runShard executes one granted shard to completion or abandonment.
func (w *worker) runShard(lr *LeaseResponse) error {
	switch lr.Kind {
	case "chaos":
		return w.runChaosShard(lr)
	case "sweep":
		return w.runSweepShard(lr)
	default:
		return w.fail(lr, fmt.Sprintf("unknown shard kind %q", lr.Kind))
	}
}

// runChaosShard drives one scenario in CheckpointEvery-instant chunks,
// banking a migratable snapshot with each heartbeat.
func (w *worker) runChaosShard(lr *LeaseResponse) error {
	sc, err := sweep.FindChaosScenario(lr.Name, lr.Seed)
	if err != nil {
		return w.fail(lr, err.Error())
	}
	engine, err := sweep.ParseEngineMode(lr.Engine)
	if err != nil {
		return w.fail(lr, err.Error())
	}
	var run *sweep.ChaosShardRun
	if len(lr.Snapshot) > 0 {
		run, err = sweep.ResumeChaosShardRun(sc, engine, lr.Snapshot)
	} else {
		run, err = sweep.NewChaosShardRun(sc, engine)
	}
	if err != nil {
		return w.fail(lr, err.Error())
	}
	chain := filepath.Join(w.opts.Dir, fmt.Sprintf("%s-%s.wck", sanitizeMetric(lr.Name), sanitizeMetric(lr.Token)))
	defer os.Remove(chain)
	every := lr.CheckpointEvery
	if every <= 0 {
		every = 200
	}
	for !run.Finished() {
		if err := run.DriveTo(run.T() + every); err != nil {
			return w.fail(lr, err.Error())
		}
		if run.Finished() {
			break
		}
		snap, err := run.Snapshot(chain)
		if err != nil {
			return w.fail(lr, err.Error())
		}
		held, err := w.heartbeat(lr, run.T(), snap)
		if err != nil {
			return err
		}
		if !held {
			return nil // stolen: abandon and lease anew
		}
		if w.opts.Stall > 0 {
			time.Sleep(w.opts.Stall)
		}
	}
	res, err := run.Result()
	if err != nil {
		return w.fail(lr, err.Error())
	}
	return w.complete(lr, res)
}

// runSweepShard runs one experiment table.
func (w *worker) runSweepShard(lr *LeaseResponse) error {
	tbl, err := sweep.Run(lr.Name)
	if err != nil {
		return w.fail(lr, err.Error())
	}
	return w.complete(lr, sweep.NewTableReport(lr.Name, tbl))
}

// heartbeat extends the lease and banks snap. A false return without
// error means the lease was lost.
func (w *worker) heartbeat(lr *LeaseResponse, t int, snap []byte) (bool, error) {
	err := w.post("/queen/v1/heartbeat", HeartbeatRequest{
		Worker: w.opts.Name, Name: lr.Name, Token: lr.Token, T: t, Snapshot: snap,
	}, nil)
	if err == nil {
		return true, nil
	}
	var se *statusError
	if asStatusError(err, &se) && se.code == http.StatusConflict {
		return false, nil
	}
	// A missed heartbeat is not fatal by itself — the next one (or the
	// reaper) resolves it.
	return true, nil
}

// complete delivers the shard result, retrying through queen restarts.
func (w *worker) complete(lr *LeaseResponse, result any) error {
	raw, err := json.Marshal(result)
	if err != nil {
		return err
	}
	err = retry.Do(finishPolicy, int64(os.Getpid()), nil, func(int) error {
		return w.post("/queen/v1/complete", CompleteRequest{
			Worker: w.opts.Name, Name: lr.Name, Token: lr.Token, Result: raw,
		}, nil)
	})
	if err != nil {
		return fmt.Errorf("queen worker %s: complete %s: %w", w.opts.Name, lr.Name, err)
	}
	return nil
}

// fail reports a shard failure and keeps the worker alive — the queen
// decides whether to retry the shard or fail the campaign.
func (w *worker) fail(lr *LeaseResponse, cause string) error {
	err := retry.Do(finishPolicy, int64(os.Getpid()), nil, func(int) error {
		return w.post("/queen/v1/fail", FailRequest{
			Worker: w.opts.Name, Name: lr.Name, Token: lr.Token, Error: cause,
		}, nil)
	})
	if err != nil {
		return fmt.Errorf("queen worker %s: fail %s: %w", w.opts.Name, lr.Name, err)
	}
	return nil
}

// statusError carries an HTTP status through the retry classification.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string { return e.msg }

func asStatusError(err error, out **statusError) bool {
	for err != nil {
		if se, ok := err.(*statusError); ok {
			*out = se
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// post issues one JSON request and classifies the response for retry:
// 503 is a hinted wait, 5xx and transport errors are transient
// (covers the queen-restart window), everything else ≥400 is
// permanent.
func (w *worker) post(path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return retry.Permanent(err)
	}
	resp, err := w.opts.Client.Post(w.opts.Base+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		return err // transport error: transient
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		hint := hintFrom(resp, raw)
		return retry.Hint(&statusError{code: resp.StatusCode, msg: fmt.Sprintf("%s: idle (status 503)", path)}, hint)
	}
	if resp.StatusCode >= 500 {
		return &statusError{code: resp.StatusCode, msg: fmt.Sprintf("%s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(raw))}
	}
	if resp.StatusCode >= 400 {
		return retry.Permanent(&statusError{code: resp.StatusCode, msg: fmt.Sprintf("%s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(raw))})
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			return retry.Permanent(err)
		}
	}
	return nil
}

// hintFrom prefers the millisecond wait in the 503 body over the
// whole-second Retry-After header.
func hintFrom(resp *http.Response, raw []byte) time.Duration {
	var wr WaitResponse
	if err := json.Unmarshal(raw, &wr); err == nil && wr.WaitMillis > 0 {
		return time.Duration(wr.WaitMillis) * time.Millisecond
	}
	if d, ok := retry.ParseRetryAfter(resp.Header.Get("Retry-After")); ok {
		return d
	}
	return 0
}
