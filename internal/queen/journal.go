package queen

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// The journal is the queen's durable task-graph state: a JSONL file
// whose first line records the campaign spec and whose subsequent
// lines record shard completions and the final merge, each fsynced
// before the triggering request is acknowledged. A restarted queen
// replays it to resume the campaign without re-running finished
// shards. Leases and snapshots are deliberately NOT journaled — they
// are volatile coordination state, reconstructed by the live protocol
// (a shard in flight when the queen died is simply leased again).
//
// A torn final line (queen killed mid-append) is tolerated on read:
// the event it described simply did not happen.

// journalEvent is one JSONL record.
type journalEvent struct {
	Ev string `json:"ev"` // "campaign" | "done" | "merged"
	// Spec is set on "campaign".
	Spec *Spec `json:"spec,omitempty"`
	// Shard and Result are set on "done".
	Shard  string          `json:"shard,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// journalWriter appends fsynced events.
type journalWriter struct {
	mu sync.Mutex
	f  *os.File
}

// openJournal opens (or creates) the journal at path. A fresh file
// gets the campaign record; an existing one must already describe the
// same campaign — NewFromJournal is the path for resuming.
func openJournal(path string, spec Spec) (*journalWriter, error) {
	st, err := os.Stat(path)
	fresh := err != nil || st.Size() == 0
	if !fresh {
		rec, err := readJournal(path)
		if err != nil {
			return nil, err
		}
		if !specEqual(spec, rec.spec) {
			return nil, fmt.Errorf("queen: journal %s holds a different campaign; resume it with -journal alone or point -journal elsewhere", path)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	jw := &journalWriter{f: f}
	if fresh {
		if err := jw.append(journalEvent{Ev: "campaign", Spec: &spec}); err != nil {
			f.Close()
			return nil, err
		}
	}
	return jw, nil
}

func (jw *journalWriter) append(ev journalEvent) error {
	line, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.f == nil {
		return fmt.Errorf("queen: journal closed")
	}
	if _, err := jw.f.Write(line); err != nil {
		return fmt.Errorf("queen: journal append: %w", err)
	}
	if err := jw.f.Sync(); err != nil {
		return fmt.Errorf("queen: journal sync: %w", err)
	}
	return nil
}

func (jw *journalWriter) appendDone(shard string, result json.RawMessage) error {
	return jw.append(journalEvent{Ev: "done", Shard: shard, Result: result})
}

func (jw *journalWriter) appendMerged() error {
	return jw.append(journalEvent{Ev: "merged"})
}

func (jw *journalWriter) close() {
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if jw.f != nil {
		jw.f.Close()
		jw.f = nil
	}
}

// journalRecord is a replayed journal: the campaign and its completed
// shards.
type journalRecord struct {
	spec    Spec
	results map[string]json.RawMessage
	merged  bool
}

// readJournal replays the journal at path. The last line may be torn;
// any other malformed line is corruption and an error.
func readJournal(path string) (*journalRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rec := &journalRecord{results: map[string]json.RawMessage{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	var torn error
	n := 0
	for sc.Scan() {
		if torn != nil {
			return nil, fmt.Errorf("queen: journal %s line %d: %w", path, n, torn)
		}
		n++
		var ev journalEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			// Tolerated only as the final line (torn append).
			torn = err
			continue
		}
		switch ev.Ev {
		case "campaign":
			if n != 1 {
				return nil, fmt.Errorf("queen: journal %s: campaign record on line %d", path, n)
			}
			rec.spec = *ev.Spec
		case "done":
			if n == 1 {
				return nil, fmt.Errorf("queen: journal %s does not start with a campaign record", path)
			}
			rec.results[ev.Shard] = ev.Result
		case "merged":
			rec.merged = true
		default:
			return nil, fmt.Errorf("queen: journal %s line %d: unknown event %q", path, n, ev.Ev)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("queen: journal %s is empty", path)
	}
	if rec.spec.Kind == "" {
		return nil, fmt.Errorf("queen: journal %s does not start with a campaign record", path)
	}
	return rec, nil
}
