package queen

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"waggle"
	"waggle/internal/ckpt"
	"waggle/internal/wire"
)

// The repo has three append-only durable formats, each promising the
// same crash contract: a writer killed mid-append costs exactly the
// torn trailing record, never the file. This suite drives all three
// readers — waggle-stream/v1 (wire.TailStream), the WCD2 checkpoint
// delta chain (wire.DecodeChain), and the queen's JSONL journal
// (readJournal) — through the same table of mutilations: the final
// record cut mid-magic, mid-length-header, mid-CRC, and mid-body, plus
// a complete final record with a corrupted body. Every cut must load
// as exactly the clean prefix; the corruption case must be refused by
// the CRC-framed formats (a complete record with a bad checksum cannot
// be a crash artifact) and tolerated by the journal only because its
// line framing cannot tell corruption from a torn append.

// tornFormat adapts one format to the shared table.
type tornFormat struct {
	name string
	// build writes a valid multi-record file into dir and returns its
	// bytes plus the offset where the final appended record starts.
	build func(t *testing.T, dir string) (data []byte, lastRec int64)
	// read parses data and returns a comparable recovered state. torn
	// is the reader's explicit torn-tail report (always false for
	// readers that tolerate silently).
	read func(t *testing.T, dir string, data []byte) (state any, torn bool, err error)
	// cuts maps the shared cut names to byte offsets inside the final
	// record [lastRec, end). The journal has no binary header, so its
	// cuts degrade to positions inside the final line.
	cuts func(data []byte, lastRec int64) map[string]int64
	// reportsTorn: the reader surfaces torn=true on a cut tail.
	reportsTorn bool
	// corruptAt returns the offset whose byte the corruption case
	// flips, leaving the record complete but its body wrong.
	corruptAt func(data []byte) int64
	// wantCorruptErr: the corrupted-body case must fail (CRC-framed
	// formats) rather than be dropped as a torn tail.
	wantCorruptErr bool
}

// framedCuts computes the cut table for the binary formats, whose
// final record is magic | uvarint(len) | crc32 ... | body.
func framedCuts(data []byte, lastRec int64, magicLen int) map[string]int64 {
	_, lenN := binary.Uvarint(data[lastRec+int64(magicLen):])
	return map[string]int64{
		"mid-magic":  lastRec + int64(magicLen)/2,
		"mid-length": lastRec + int64(magicLen),
		"mid-crc":    lastRec + int64(magicLen) + int64(lenN) + 2,
		"mid-body":   int64(len(data)) - 1,
	}
}

func tornFormats() []tornFormat {
	return []tornFormat{
		{
			name: "waggle-stream-v1",
			build: func(t *testing.T, dir string) ([]byte, int64) {
				path := filepath.Join(dir, "torn.wstream")
				sw, err := wire.OpenStream(path, 3, 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				if err := sw.AppendKeyframe(0, []ckpt.XY{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}}, 0, ""); err != nil {
					t.Fatal(err)
				}
				last := int64(0)
				for i := 0; i < 4; i++ {
					last = sw.Offset()
					err := sw.AppendStep(i, []wire.StreamMove{{Robot: i % 3, To: ckpt.XY{X: float64(i + 1), Y: 1}}},
						[]int{i % 3}, nil, nil)
					if err != nil {
						t.Fatal(err)
					}
				}
				if err := sw.Close(); err != nil {
					t.Fatal(err)
				}
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				return data, last
			},
			read: func(t *testing.T, dir string, data []byte) (any, bool, error) {
				recs, torn, err := wire.DecodeStream(data)
				return recs, torn, err
			},
			cuts: func(data []byte, lastRec int64) map[string]int64 {
				return framedCuts(data, lastRec, 4)
			},
			reportsTorn:    true,
			corruptAt:      func(data []byte) int64 { return int64(len(data)) - 1 },
			wantCorruptErr: true,
		},
		{
			name: "wcd2-delta-chain",
			build: func(t *testing.T, dir string) ([]byte, int64) {
				path := filepath.Join(dir, "torn.wck")
				s, err := waggle.NewSwarm([]waggle.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}}, waggle.WithSeed(3))
				if err != nil {
					t.Fatal(err)
				}
				cw, err := s.NewCheckpointWriter(path, waggle.CodecDelta)
				if err != nil {
					t.Fatal(err)
				}
				if err := cw.Save(); err != nil { // base frame
					t.Fatal(err)
				}
				last := int64(0)
				for i := 0; i < 3; i++ {
					if err := s.Send(i, (i+1)%3, []byte{byte(i)}); err != nil {
						t.Fatal(err)
					}
					st, err := os.Stat(path)
					if err != nil {
						t.Fatal(err)
					}
					last = st.Size()
					if err := cw.Save(); err != nil {
						t.Fatal(err)
					}
					if !cw.LastSaveWasDelta() {
						t.Fatalf("save %d was not a delta append", i)
					}
				}
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				return data, last
			},
			read: func(t *testing.T, dir string, data []byte) (any, bool, error) {
				ck, err := wire.DecodeChain(data)
				return ck, false, err
			},
			cuts: func(data []byte, lastRec int64) map[string]int64 {
				return framedCuts(data, lastRec, 4)
			},
			corruptAt:      func(data []byte) int64 { return int64(len(data)) - 1 },
			wantCorruptErr: true,
		},
		{
			name: "queen-journal",
			build: func(t *testing.T, dir string) ([]byte, int64) {
				path := filepath.Join(dir, "torn.journal")
				jw, err := openJournal(path, Spec{Kind: "chaos", Seed: 7, Names: []string{"a", "b"}})
				if err != nil {
					t.Fatal(err)
				}
				last := int64(0)
				for _, shard := range []string{"a", "b"} {
					st, err := os.Stat(path)
					if err != nil {
						t.Fatal(err)
					}
					last = st.Size()
					if err := jw.appendDone(shard, json.RawMessage(`{"ok":true}`)); err != nil {
						t.Fatal(err)
					}
				}
				jw.close()
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				return data, last
			},
			read: func(t *testing.T, dir string, data []byte) (any, bool, error) {
				path := filepath.Join(dir, "read.journal")
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
				rec, err := readJournal(path)
				return rec, false, err
			},
			cuts: func(data []byte, lastRec int64) map[string]int64 {
				// No binary header: every cut lands inside the final
				// JSONL line. mid-body must cut real content — end-1
				// would only shave the newline and leave a complete line.
				span := int64(len(data)) - lastRec
				return map[string]int64{
					"mid-magic":  lastRec + 1,
					"mid-length": lastRec + span/3,
					"mid-crc":    lastRec + span/2,
					"mid-body":   int64(len(data)) - 2,
				}
			},
			// Line framing cannot distinguish a corrupted final line
			// from a torn append, so corruption in the last line is
			// dropped like a tear (anywhere else it is an error, pinned
			// by TestJournalRejectsMidFileCorruption below).
			corruptAt:      func(data []byte) int64 { return int64(len(data)) - 2 },
			wantCorruptErr: false,
		},
	}
}

// TestTornTailSuite is the shared crash-contract table: for every
// format, every cut of the final record loads as exactly the clean
// prefix, and a complete-but-corrupt final record is refused by the
// CRC-framed readers.
func TestTornTailSuite(t *testing.T) {
	for _, f := range tornFormats() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			dir := t.TempDir()
			data, lastRec := f.build(t, dir)
			if lastRec <= 0 || lastRec >= int64(len(data)) {
				t.Fatalf("build returned lastRec=%d for a %d-byte file", lastRec, len(data))
			}

			full, torn, err := f.read(t, dir, data)
			if err != nil || torn {
				t.Fatalf("clean file: torn=%v err=%v", torn, err)
			}
			want, torn, err := f.read(t, dir, data[:lastRec])
			if err != nil || torn {
				t.Fatalf("clean prefix: torn=%v err=%v", torn, err)
			}
			if reflect.DeepEqual(full, want) {
				t.Fatalf("final record does not change the loaded state; the cuts below would prove nothing")
			}

			for name, cut := range f.cuts(data, lastRec) {
				if cut <= lastRec || cut >= int64(len(data)) {
					t.Fatalf("%s: cut offset %d outside the final record [%d, %d)", name, cut, lastRec, len(data))
				}
				got, torn, err := f.read(t, dir, data[:cut])
				if err != nil {
					t.Errorf("%s (cut at %d): read failed: %v", name, cut, err)
					continue
				}
				if torn != f.reportsTorn {
					t.Errorf("%s: torn=%v, want %v", name, torn, f.reportsTorn)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s: cut file did not load as the clean prefix", name)
				}
			}

			mutated := append([]byte(nil), data...)
			mutated[f.corruptAt(data)] ^= 0x01
			got, torn, err := f.read(t, dir, mutated)
			if f.wantCorruptErr {
				if !errors.Is(err, ckpt.ErrChecksum) {
					t.Errorf("corrupt body: err=%v, want ErrChecksum", err)
				}
			} else {
				if err != nil || torn {
					t.Errorf("corrupt final line: torn=%v err=%v, want tolerated", torn, err)
				} else if !reflect.DeepEqual(got, want) {
					t.Errorf("corrupt final line did not load as the clean prefix")
				}
			}
		})
	}
}

// TestJournalRejectsMidFileCorruption pins the boundary of the
// journal's tolerance: a malformed line is forgiven only as the final
// line. The same corruption one record earlier is an error.
func TestJournalRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	f := tornFormats()[2]
	if f.name != "queen-journal" {
		t.Fatal("format table reordered")
	}
	data, lastRec := f.build(t, dir)
	mutated := append([]byte(nil), data...)
	mutated[lastRec-2] ^= 0x01 // inside the second-to-last line
	if _, _, err := f.read(t, dir, mutated); err == nil {
		t.Fatal("mid-file corruption was tolerated; only the final line may be torn")
	}
}
