// Package queen is the distributed sweep/chaos orchestrator: a
// coordinator that decomposes a campaign into shards (one scenario or
// experiment each), leases them to workers over HTTP, and merges the
// completed results into the canonical single-process report —
// byte-identical to what waggle-sweep/waggle-chaos -o write, whatever
// the worker count, completion order, or mid-campaign failures.
//
// The fault model is the paper's, lifted one level up: workers are
// deaf and dumb too. They never talk to each other; a worker may die
// silently at any instant, and the queen only learns of it by watching
// state it can observe — the lease heartbeat going quiet. Progress
// migrates the way robot state does: through durable observable
// artifacts (checkpoint-chain shard snapshots), so a stolen shard
// resumes exactly where the dead worker left it and still produces the
// canonical bytes. The queen itself is restartable from a journal of
// the task graph, making every party in the protocol crash-tolerant.
package queen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"waggle"
	"waggle/internal/ckpt"
	"waggle/internal/obs"
	"waggle/internal/retry"
	"waggle/internal/sweep"
)

// Spec is the campaign definition: what to run and how to shard it.
// It is journaled verbatim, so a restarted queen re-derives the exact
// task graph.
type Spec struct {
	// Kind selects the harness: "chaos" (scenario matrix) or "sweep"
	// (experiment tables).
	Kind string `json:"kind"`
	// Seed keys chaos scenario generation and the merged report.
	Seed int64 `json:"seed"`
	// Engine is the report-schema engine name ("", "auto",
	// "sequential", "parallel").
	Engine string `json:"engine,omitempty"`
	// Names lists the shards. Empty selects every chaos scenario;
	// sweep campaigns must name their experiments.
	Names []string `json:"names,omitempty"`
	// CheckpointEvery is the chaos shard snapshot cadence in simulated
	// instants (default 200): smaller values migrate more progress on a
	// steal at the cost of more chain appends.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// shardState is one node of the task graph.
type shardState int

const (
	shardPending shardState = iota
	shardLeased
	shardDone
)

func (s shardState) String() string {
	switch s {
	case shardLeased:
		return "leased"
	case shardDone:
		return "done"
	default:
		return "pending"
	}
}

// shard is the queen-side state of one unit of work.
type shard struct {
	name     string
	state    shardState
	attempts int // grants so far (first dispatch included)
	token    string
	worker   string
	leasedAt time.Time
	deadline time.Time
	// notBefore delays re-dispatch of a requeued shard (jittered
	// capped backoff).
	notBefore time.Time
	// snapshot is the latest migratable progress uploaded by a
	// heartbeat; a subsequent lease of this shard hands it over.
	snapshot  []byte
	snapshotT int
	result    json.RawMessage
}

// Options configures a Queen.
type Options struct {
	Spec Spec
	// Journal is the task-graph journal path; empty disables
	// journaling (and restart-resume).
	Journal string
	// Out is where the merged report is atomically written on
	// completion; empty keeps it in memory only (see Report).
	Out string
	// LeaseTTL is how long a lease survives without a heartbeat
	// (default 10s).
	LeaseTTL time.Duration
	// ShardAttempts caps how many times one shard may be granted
	// before the campaign fails (default 5).
	ShardAttempts int
	// Requeue shapes the jittered backoff between a shard failing (or
	// its lease expiring) and its next grant.
	Requeue retry.Policy
}

func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.ShardAttempts <= 0 {
		o.ShardAttempts = 5
	}
	if o.Spec.CheckpointEvery <= 0 {
		o.Spec.CheckpointEvery = 200
	}
	if o.Spec.Engine == "" {
		o.Spec.Engine = "auto"
	}
	return o
}

// Queen coordinates one campaign.
type Queen struct {
	opts   Options
	engine waggle.EngineMode

	mu       sync.Mutex
	shards   map[string]*shard
	order    []string
	tokenSeq int
	rng      *rand.Rand
	workers  map[string]bool
	finished bool
	failure  error
	report   []byte
	jw       *journalWriter

	m            metrics
	reg          *obs.Registry
	shardSeconds map[string]*obs.Histogram

	doneCh chan struct{}
	stopCh chan struct{}
	wg     sync.WaitGroup
}

// New builds a queen for the campaign in opts. ob receives the queen's
// instrumentation (nil allocates a private observer). Call Start to
// arm the lease reaper and Mount to expose the worker API.
func New(opts Options, ob *obs.Observer) (*Queen, error) {
	opts = opts.withDefaults()
	engine, err := sweep.ParseEngineMode(opts.Spec.Engine)
	if err != nil {
		return nil, err
	}
	names, err := shardNames(opts.Spec)
	if err != nil {
		return nil, err
	}
	if ob == nil {
		ob = obs.New(16)
	}
	q := &Queen{
		opts:         opts,
		engine:       engine,
		shards:       map[string]*shard{},
		order:        names,
		rng:          rand.New(rand.NewSource(opts.Spec.Seed ^ 0x5eed)),
		workers:      map[string]bool{},
		m:            newMetrics(ob.Registry()),
		reg:          ob.Registry(),
		shardSeconds: map[string]*obs.Histogram{},
		doneCh:       make(chan struct{}),
		stopCh:       make(chan struct{}),
	}
	for _, n := range names {
		q.shards[n] = &shard{name: n}
	}
	if opts.Journal != "" {
		jw, err := openJournal(opts.Journal, opts.Spec)
		if err != nil {
			return nil, err
		}
		q.jw = jw
	}
	q.syncGauges()
	return q, nil
}

// NewFromJournal rebuilds a queen from a journal written by a previous
// run: the spec is adopted from the journal's campaign record, every
// journaled shard result is seated as done, and the campaign continues
// from there (in-flight leases of the dead queen are simply pending
// again — leases are volatile by design). opts.Spec is ignored except
// as a cross-check: when its Kind is set, it must match the journal.
func NewFromJournal(path string, opts Options, ob *obs.Observer) (*Queen, error) {
	rec, err := readJournal(path)
	if err != nil {
		return nil, err
	}
	if opts.Spec.Kind != "" && !specEqual(opts.Spec, rec.spec) {
		return nil, fmt.Errorf("queen: journal %s holds a different campaign (kind %q seed %d) than requested",
			path, rec.spec.Kind, rec.spec.Seed)
	}
	opts.Spec = rec.spec
	opts.Journal = path
	q, err := New(opts, ob)
	if err != nil {
		return nil, err
	}
	q.mu.Lock()
	for name, result := range rec.results {
		sh, ok := q.shards[name]
		if !ok {
			q.mu.Unlock()
			q.Stop()
			return nil, fmt.Errorf("queen: journal %s holds a result for unknown shard %q", path, name)
		}
		sh.state = shardDone
		sh.result = result
		q.m.Completed.Inc()
	}
	q.syncGauges()
	allDone := q.allDoneLocked()
	q.mu.Unlock()
	if allDone {
		if err := q.finish(); err != nil {
			q.Stop()
			return nil, err
		}
	}
	return q, nil
}

func specEqual(a, b Spec) bool {
	if a.Kind != b.Kind || a.Seed != b.Seed {
		return false
	}
	if a.Engine != "" && a.Engine != b.Engine {
		return false
	}
	return true
}

// shardNames derives and validates the campaign's shard list.
func shardNames(spec Spec) ([]string, error) {
	switch spec.Kind {
	case "chaos":
		all := sweep.ChaosScenarioNames(spec.Seed)
		if len(spec.Names) == 0 {
			return all, nil
		}
		valid := map[string]bool{}
		for _, n := range all {
			valid[n] = true
		}
		seen := map[string]bool{}
		for _, n := range spec.Names {
			if !valid[n] {
				return nil, fmt.Errorf("queen: unknown chaos scenario %q", n)
			}
			if seen[n] {
				return nil, fmt.Errorf("queen: duplicate shard %q", n)
			}
			seen[n] = true
		}
		return spec.Names, nil
	case "sweep":
		if len(spec.Names) == 0 {
			return nil, fmt.Errorf("queen: sweep campaigns must name their experiments")
		}
		seen := map[string]bool{}
		for _, n := range spec.Names {
			if seen[n] {
				return nil, fmt.Errorf("queen: duplicate shard %q", n)
			}
			seen[n] = true
		}
		return spec.Names, nil
	default:
		return nil, fmt.Errorf("queen: unknown campaign kind %q (chaos|sweep)", spec.Kind)
	}
}

// Start arms the lease reaper. Safe to call once.
func (q *Queen) Start() {
	q.wg.Add(1)
	go q.reap()
}

// Stop halts the reaper and closes the journal. The campaign state is
// left as-is; a journaled campaign can be resumed with NewFromJournal.
func (q *Queen) Stop() {
	q.mu.Lock()
	select {
	case <-q.stopCh:
	default:
		close(q.stopCh)
	}
	jw := q.jw
	q.jw = nil
	q.mu.Unlock()
	q.wg.Wait()
	if jw != nil {
		jw.close()
	}
}

// Done is closed when every shard has completed and the merged report
// has been written.
func (q *Queen) Done() <-chan struct{} { return q.doneCh }

// Err reports the terminal campaign failure, if any.
func (q *Queen) Err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.failure
}

// Report returns the merged report bytes (nil until Done).
func (q *Queen) Report() []byte {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.report
}

// Counters snapshots the campaign counters by short name — what the
// CLI prints and the self-check asserts on.
func (q *Queen) Counters() map[string]int64 {
	return map[string]int64{
		"dispatched":    q.m.Dispatched.Value(),
		"retried":       q.m.Retried.Value(),
		"stolen":        q.m.Stolen.Value(),
		"completed":     q.m.Completed.Value(),
		"failed":        q.m.Failed.Value(),
		"lease_expired": q.m.LeaseExpired.Value(),
		"snapshots":     q.m.Snapshots.Value(),
	}
}

// reap scans for expired leases at TTL/8 granularity: an expired lease
// means a worker died (or wedged) mid-shard, so the shard — with its
// last uploaded snapshot — goes back in the queue for another worker
// to steal.
func (q *Queen) reap() {
	defer q.wg.Done()
	tick := q.opts.LeaseTTL / 8
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-q.stopCh:
			return
		case now := <-t.C:
			q.expireLeases(now)
		}
	}
}

func (q *Queen) expireLeases(now time.Time) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, name := range q.order {
		sh := q.shards[name]
		if sh.state == shardLeased && now.After(sh.deadline) {
			q.m.LeaseExpired.Inc()
			q.requeueLocked(sh, fmt.Errorf("queen: shard %q lease expired on worker %q", sh.name, sh.worker))
		}
	}
	q.syncGauges()
}

// requeueLocked returns a shard to the pending queue with backoff, or
// fails the campaign when its attempts are exhausted.
func (q *Queen) requeueLocked(sh *shard, cause error) {
	sh.state = shardPending
	sh.token = ""
	sh.worker = ""
	if sh.attempts >= q.opts.ShardAttempts {
		q.failLocked(fmt.Errorf("queen: shard %q exhausted %d attempts: %w", sh.name, sh.attempts, cause))
		return
	}
	sh.notBefore = time.Now().Add(q.opts.Requeue.JitteredDelay(q.rng, sh.attempts-1))
}

// failLocked records the terminal campaign failure and releases
// waiters.
func (q *Queen) failLocked(err error) {
	if q.finished {
		return
	}
	q.finished = true
	q.failure = err
	close(q.doneCh)
}

// lease grants the next runnable shard to worker. The bool reports
// whether the campaign is complete; a zero wait means a grant was
// made, and a positive wait asks the worker to come back later.
func (q *Queen) lease(worker string) (grant *LeaseResponse, wait time.Duration, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.finished {
		if q.failure != nil {
			return nil, 0, q.failure
		}
		return &LeaseResponse{Done: true}, 0, nil
	}
	if !q.workers[worker] {
		q.workers[worker] = true
		q.m.Workers.Set(float64(len(q.workers)))
	}
	now := time.Now()
	var soonest time.Duration
	for _, name := range q.order {
		sh := q.shards[name]
		if sh.state != shardPending {
			continue
		}
		if d := sh.notBefore.Sub(now); d > 0 {
			if soonest == 0 || d < soonest {
				soonest = d
			}
			continue
		}
		q.tokenSeq++
		sh.state = shardLeased
		sh.token = fmt.Sprintf("%s#%d", worker, q.tokenSeq)
		sh.worker = worker
		sh.leasedAt = now
		sh.deadline = now.Add(q.opts.LeaseTTL)
		sh.attempts++
		q.m.Dispatched.Inc()
		if sh.attempts > 1 {
			q.m.Retried.Inc()
		}
		if len(sh.snapshot) > 0 {
			q.m.Stolen.Inc()
		}
		q.syncGauges()
		return &LeaseResponse{
			Name:            sh.name,
			Token:           sh.token,
			Kind:            q.opts.Spec.Kind,
			Seed:            q.opts.Spec.Seed,
			Engine:          q.opts.Spec.Engine,
			CheckpointEvery: q.opts.Spec.CheckpointEvery,
			TTLMillis:       q.opts.LeaseTTL.Milliseconds(),
			Snapshot:        sh.snapshot,
		}, 0, nil
	}
	if soonest <= 0 {
		// Everything is leased out: poll again after a fraction of the
		// TTL — sooner than that and nothing can have changed.
		soonest = q.opts.LeaseTTL / 4
	}
	return nil, soonest, nil
}

// heartbeat extends a lease and optionally banks migratable progress.
// A false return means the caller no longer holds the shard (expired
// and re-granted, or completed elsewhere) and must abandon it.
func (q *Queen) heartbeat(name, token string, t int, snapshot []byte) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	sh, ok := q.shards[name]
	if !ok || sh.state != shardLeased || sh.token != token {
		return false
	}
	sh.deadline = time.Now().Add(q.opts.LeaseTTL)
	if len(snapshot) > 0 {
		sh.snapshot = snapshot
		sh.snapshotT = t
		q.m.Snapshots.Inc()
		q.m.SnapshotBytes.Add(int64(len(snapshot)))
	}
	return true
}

// complete accepts a finished shard's result. Deliberately token-blind
// for open shards: results are deterministic, so a result from a
// stale lease is byte-for-byte the result the current lease would
// produce — accepting it early is RoboCast's retry-until-acknowledged
// discipline, not a race. Duplicate completion is idempotent.
func (q *Queen) complete(name string, result json.RawMessage) error {
	q.mu.Lock()
	sh, ok := q.shards[name]
	if !ok {
		q.mu.Unlock()
		return fmt.Errorf("queen: unknown shard %q", name)
	}
	if sh.state == shardDone {
		q.mu.Unlock()
		return nil
	}
	if q.finished {
		q.mu.Unlock()
		return fmt.Errorf("queen: campaign already failed")
	}
	worker, leasedAt := sh.worker, sh.leasedAt
	sh.state = shardDone
	sh.result = result
	sh.snapshot = nil
	sh.token = ""
	q.m.Completed.Inc()
	if worker != "" && !leasedAt.IsZero() {
		q.observeShardSecondsLocked(worker, time.Since(leasedAt).Seconds())
	}
	jw := q.jw
	q.syncGauges()
	allDone := q.allDoneLocked()
	q.mu.Unlock()

	if jw != nil {
		if err := jw.appendDone(name, result); err != nil {
			return err
		}
	}
	if allDone {
		return q.finish()
	}
	return nil
}

// fail requeues a shard after a worker-reported failure.
func (q *Queen) fail(name, token, cause string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	sh, ok := q.shards[name]
	if !ok {
		return fmt.Errorf("queen: unknown shard %q", name)
	}
	if sh.state != shardLeased || sh.token != token {
		return nil // stale failure report; the reaper already moved on
	}
	q.m.Failed.Inc()
	q.requeueLocked(sh, fmt.Errorf("worker %q: %s", sh.worker, cause))
	q.syncGauges()
	return nil
}

func (q *Queen) allDoneLocked() bool {
	for _, sh := range q.shards {
		if sh.state != shardDone {
			return false
		}
	}
	return true
}

// finish merges the completed shards into the canonical report, writes
// it atomically, journals the merge, and releases waiters.
func (q *Queen) finish() error {
	report, err := q.buildReport()
	if err == nil && q.opts.Out != "" {
		err = ckpt.WriteFileAtomic(q.opts.Out, report)
	}
	q.mu.Lock()
	if q.finished {
		q.mu.Unlock()
		return q.failure
	}
	jw := q.jw
	q.finished = true
	if err != nil {
		q.failure = err
	} else {
		q.report = report
	}
	close(q.doneCh)
	q.mu.Unlock()
	if err == nil && jw != nil {
		return jw.appendMerged()
	}
	return err
}

// buildReport assembles the merged report bytes exactly as the
// single-process CLIs write them.
func (q *Queen) buildReport() ([]byte, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var buf bytes.Buffer
	switch q.opts.Spec.Kind {
	case "chaos":
		results := map[string]sweep.ChaosResult{}
		for name, sh := range q.shards {
			var r sweep.ChaosResult
			if err := json.Unmarshal(sh.result, &r); err != nil {
				return nil, fmt.Errorf("queen: shard %q result: %w", name, err)
			}
			results[name] = r
		}
		names := q.opts.Spec.Names
		if len(names) == 0 {
			names = nil
		}
		report, err := sweep.MergeChaosReport(q.opts.Spec.Seed, q.engine, names, results)
		if err != nil {
			return nil, err
		}
		if err := report.WriteJSON(&buf); err != nil {
			return nil, err
		}
	case "sweep":
		tables := map[string]sweep.TableReport{}
		for name, sh := range q.shards {
			var t sweep.TableReport
			if err := json.Unmarshal(sh.result, &t); err != nil {
				return nil, fmt.Errorf("queen: shard %q result: %w", name, err)
			}
			tables[name] = t
		}
		report, err := sweep.MergeSweepReport(q.opts.Spec.Names, tables)
		if err != nil {
			return nil, err
		}
		if err := report.WriteJSON(&buf); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("queen: unknown campaign kind %q", q.opts.Spec.Kind)
	}
	return buf.Bytes(), nil
}

// status snapshots the task graph for /queen/v1/status.
func (q *Queen) status() StatusResponse {
	q.mu.Lock()
	defer q.mu.Unlock()
	resp := StatusResponse{
		Kind:   q.opts.Spec.Kind,
		Seed:   q.opts.Spec.Seed,
		Done:   q.finished && q.failure == nil,
		Merged: q.report != nil,
	}
	if q.failure != nil {
		resp.Error = q.failure.Error()
	}
	for _, name := range q.order {
		sh := q.shards[name]
		resp.Shards = append(resp.Shards, ShardStatus{
			Name:        sh.name,
			State:       sh.state.String(),
			Worker:      sh.worker,
			Attempts:    sh.attempts,
			HasSnapshot: len(sh.snapshot) > 0,
			SnapshotT:   sh.snapshotT,
		})
		switch sh.state {
		case shardPending:
			resp.Pending++
		case shardLeased:
			resp.Leased++
		case shardDone:
			resp.Completed++
		}
	}
	workers := make([]string, 0, len(q.workers))
	for w := range q.workers {
		workers = append(workers, w)
	}
	sort.Strings(workers)
	resp.Workers = workers
	return resp
}

func (q *Queen) syncGauges() {
	var pending, leased, done float64
	for _, sh := range q.shards {
		switch sh.state {
		case shardPending:
			pending++
		case shardLeased:
			leased++
		case shardDone:
			done++
		}
	}
	q.m.Pending.Set(pending)
	q.m.Leased.Set(leased)
	q.m.DoneShards.Set(done)
}
