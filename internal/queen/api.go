package queen

import (
	"encoding/json"
	"fmt"
	"net/http"

	"waggle/internal/retry"
)

// The worker protocol, one resource: POST /queen/v1/lease to claim a
// shard, POST /queen/v1/heartbeat to keep it (optionally banking a
// migratable snapshot), POST /queen/v1/complete or /fail to finish
// it, GET /queen/v1/status to watch the campaign. An idle queen
// answers lease with 503 plus Retry-After — the same backpressure
// contract waggle-serve speaks — so workers and load balancers need
// no queen-specific waiting logic.

// LeaseRequest asks for the next runnable shard.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse grants a shard (or reports the campaign done). A
// non-empty Snapshot is a dead worker's banked progress: resume from
// it instead of starting cold.
type LeaseResponse struct {
	Done            bool   `json:"done,omitempty"`
	Name            string `json:"name,omitempty"`
	Token           string `json:"token,omitempty"`
	Kind            string `json:"kind,omitempty"`
	Seed            int64  `json:"seed,omitempty"`
	Engine          string `json:"engine,omitempty"`
	CheckpointEvery int    `json:"checkpoint_every,omitempty"`
	TTLMillis       int64  `json:"ttl_ms,omitempty"`
	Snapshot        []byte `json:"snapshot,omitempty"`
}

// WaitResponse is the 503 body: how long the worker should wait
// before asking again (finer-grained than the whole-second
// Retry-After).
type WaitResponse struct {
	WaitMillis int64 `json:"wait_ms"`
}

// HeartbeatRequest extends a lease; a non-empty Snapshot banks
// migratable progress as of simulated instant T.
type HeartbeatRequest struct {
	Worker   string `json:"worker"`
	Name     string `json:"name"`
	Token    string `json:"token"`
	T        int    `json:"t,omitempty"`
	Snapshot []byte `json:"snapshot,omitempty"`
}

// CompleteRequest delivers a finished shard's result: a ChaosResult
// (chaos campaigns) or a TableReport (sweep campaigns).
type CompleteRequest struct {
	Worker string          `json:"worker"`
	Name   string          `json:"name"`
	Token  string          `json:"token"`
	Result json.RawMessage `json:"result"`
}

// FailRequest reports a shard failure the worker could observe.
type FailRequest struct {
	Worker string `json:"worker"`
	Name   string `json:"name"`
	Token  string `json:"token"`
	Error  string `json:"error"`
}

// ShardStatus is one task-graph node in a status report.
type ShardStatus struct {
	Name        string `json:"name"`
	State       string `json:"state"`
	Worker      string `json:"worker,omitempty"`
	Attempts    int    `json:"attempts"`
	HasSnapshot bool   `json:"has_snapshot,omitempty"`
	SnapshotT   int    `json:"snapshot_t,omitempty"`
}

// StatusResponse is the campaign view at /queen/v1/status.
type StatusResponse struct {
	Kind      string        `json:"kind"`
	Seed      int64         `json:"seed"`
	Done      bool          `json:"done"`
	Merged    bool          `json:"merged"`
	Error     string        `json:"error,omitempty"`
	Pending   int           `json:"pending"`
	Leased    int           `json:"leased"`
	Completed int           `json:"completed"`
	Workers   []string      `json:"workers,omitempty"`
	Shards    []ShardStatus `json:"shards"`
}

// Mount registers the worker protocol on mux — typically the
// extensible obs.Mux, so the campaign API shares a listener with
// /metrics and friends.
func (q *Queen) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /queen/v1/lease", q.handleLease)
	mux.HandleFunc("POST /queen/v1/heartbeat", q.handleHeartbeat)
	mux.HandleFunc("POST /queen/v1/complete", q.handleComplete)
	mux.HandleFunc("POST /queen/v1/fail", q.handleFail)
	mux.HandleFunc("GET /queen/v1/status", q.handleStatus)
}

func (q *Queen) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decode(w, r, &req) {
		return
	}
	if req.Worker == "" {
		httpError(w, http.StatusBadRequest, "worker name required")
		return
	}
	grant, wait, err := q.lease(req.Worker)
	if err != nil {
		httpError(w, http.StatusConflict, "campaign failed: %v", err)
		return
	}
	if grant == nil {
		w.Header().Set("Retry-After", retry.CeilSeconds(wait))
		writeJSON(w, http.StatusServiceUnavailable, WaitResponse{WaitMillis: wait.Milliseconds()})
		return
	}
	writeJSON(w, http.StatusOK, grant)
}

func (q *Queen) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decode(w, r, &req) {
		return
	}
	if !q.heartbeat(req.Name, req.Token, req.T, req.Snapshot) {
		// The lease moved on (expired, re-granted, or completed): the
		// worker must abandon the shard.
		httpError(w, http.StatusConflict, "lease for %q is no longer held", req.Name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (q *Queen) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Result) == 0 {
		httpError(w, http.StatusBadRequest, "result required")
		return
	}
	if err := q.complete(req.Name, req.Result); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (q *Queen) handleFail(w http.ResponseWriter, r *http.Request) {
	var req FailRequest
	if !decode(w, r, &req) {
		return
	}
	if err := q.fail(req.Name, req.Token, req.Error); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (q *Queen) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, q.status())
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}
