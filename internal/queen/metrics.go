package queen

import "waggle/internal/obs"

// metrics is the queen's instrumentation on the shared obs registry,
// so -listen exposes campaign progress next to any sim metrics.
type metrics struct {
	// Dispatched counts lease grants; Retried the grants of a shard
	// past its first attempt; Stolen the grants that handed over a
	// dead worker's snapshot; Completed accepted results; Failed
	// worker-reported shard failures; LeaseExpired reaper firings.
	Dispatched, Retried, Stolen, Completed, Failed, LeaseExpired *obs.Counter
	// Snapshots counts banked shard snapshots; SnapshotBytes their
	// cumulative size.
	Snapshots, SnapshotBytes *obs.Counter
	// Pending/Leased/DoneShards are the current task-graph population;
	// Workers the distinct workers seen.
	Pending, Leased, DoneShards, Workers *obs.Gauge
}

func newMetrics(r *obs.Registry) metrics {
	return metrics{
		Dispatched:    r.Counter("waggle_queen_shards_dispatched_total", "Shard leases granted."),
		Retried:       r.Counter("waggle_queen_shards_retried_total", "Shard leases granted past the first attempt."),
		Stolen:        r.Counter("waggle_queen_shards_stolen_total", "Shard leases granted with a prior worker's snapshot."),
		Completed:     r.Counter("waggle_queen_shards_completed_total", "Shard results accepted."),
		Failed:        r.Counter("waggle_queen_shards_failed_total", "Worker-reported shard failures."),
		LeaseExpired:  r.Counter("waggle_queen_lease_expired_total", "Leases expired by the reaper (dead or wedged worker)."),
		Snapshots:     r.Counter("waggle_queen_snapshots_total", "Migratable shard snapshots banked by heartbeats."),
		SnapshotBytes: r.Counter("waggle_queen_snapshot_bytes_total", "Cumulative bytes of banked shard snapshots."),
		Pending:       r.Gauge("waggle_queen_shards_pending", "Shards waiting for a worker."),
		Leased:        r.Gauge("waggle_queen_shards_leased", "Shards currently leased out."),
		DoneShards:    r.Gauge("waggle_queen_shards_done", "Shards completed."),
		Workers:       r.Gauge("waggle_queen_workers", "Distinct workers that have requested a lease."),
	}
}

// shardSecondsBounds spans 5ms–2m: a resumed shard tail sits at the
// bottom, a cold full-budget scenario with stalls near the top.
var shardSecondsBounds = []float64{
	5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// observeShardSecondsLocked records one shard's lease-to-complete wall
// time on the per-worker latency histogram, created on first sight of
// the worker. Wall-clock, therefore volatile (excluded from
// deterministic snapshots).
func (q *Queen) observeShardSecondsLocked(worker string, seconds float64) {
	h, ok := q.shardSeconds[worker]
	if !ok {
		h = q.reg.Histogram("waggle_queen_shard_seconds_"+sanitizeMetric(worker),
			"Wall-clock shard latency on worker "+worker+".", shardSecondsBounds, true)
		q.shardSeconds[worker] = h
	}
	h.Observe(seconds)
}

// sanitizeMetric maps an arbitrary worker name into the metric-name
// alphabet.
func sanitizeMetric(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}
