// Package serve is the waggle session daemon: a multi-tenant HTTP/JSON
// service hosting thousands of concurrent swarm sessions, built to
// degrade gracefully instead of collapsing under hostile traffic.
//
// Every robustness mechanism is first-class:
//
//   - Each session is pinned to one shard of a bounded worker pool, so
//     all mutations of a swarm are serialized without per-session locks
//     and a slow session cannot monopolize more than its shard.
//   - Shard queues are bounded; a full queue sheds load with 503 +
//     Retry-After instead of queueing without bound. A global token
//     bucket throttles with 429 + Retry-After before the queues fill.
//   - Requests carry deadlines; work whose deadline expired while
//     queued is skipped, not executed into the void.
//   - Sessions have lifetime step budgets, bounding both runaway
//     clients and the replay cost of resuming a checkpointed session.
//   - Idle sessions are evicted: folded into a CodecDelta checkpoint
//     chain on disk and dropped from memory. The next touch loads and
//     replays the chain — the internal/ckpt round-trip guarantee makes
//     eviction invisible to clients (byte-identical observable state).
//   - Every mutation appends a delta frame to the session's chain, so
//     a crash at any instant loses at most the op in flight; restart
//     recovers every session on disk, lazily, on first touch.
//   - Shutdown stops accepting work, drains in-flight ops, and
//     checkpoints every live session, so a restarted server resumes
//     byte-identically.
//
// The session state machine is active → idle → evicted → resumed
// (resumed ≡ active again, with the resume counter bumped); see
// DESIGN.md §5h.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"waggle/internal/obs"
)

// Options configures a Server. Zero fields take the defaults below;
// Dir is required.
type Options struct {
	// Dir is the checkpoint directory: one CodecDelta chain file per
	// session. Required. A restarted server pointed at the same Dir
	// recovers every session in it.
	Dir string
	// Shards is the worker-pool size sessions are pinned across
	// (default 2×GOMAXPROCS, min 4).
	Shards int
	// QueueDepth bounds each shard's task queue (default 128). A full
	// queue sheds with 503.
	QueueDepth int
	// MaxSessions bounds the total session count, live + evicted
	// (default 16384). At capacity, creates shed with 503.
	MaxSessions int
	// MaxRobots bounds a session's swarm size (default 128).
	MaxRobots int
	// StepBudget is the lifetime instant budget per session (default
	// 1e5). Exhausted budgets fail with 403 — it also bounds the input
	// log a resume has to replay.
	StepBudget int
	// MaxStepsPerRequest caps one step request (default 10000).
	MaxStepsPerRequest int
	// RequestTimeout is the per-request execution deadline (default
	// 10s): queued work whose deadline passes is skipped with 503.
	RequestTimeout time.Duration
	// IdleAfter is the idle-eviction threshold (default 2m): sessions
	// untouched this long are folded to their checkpoint chain.
	IdleAfter time.Duration
	// EvictScan is the janitor period (default 1s).
	EvictScan time.Duration
	// Rate and Burst shape the global token bucket over /v1 requests
	// (ops/sec; Rate 0 disables throttling). Over-rate traffic gets
	// 429 + Retry-After.
	Rate  float64
	Burst int
	// MaxObserveWait caps the long-poll observe and spectate waits
	// (default 30s). The HTTP write timeout must exceed it
	// (cmd/waggle-serve derives its obs.ServeOptions from this).
	MaxObserveWait time.Duration
	// Stream gives every session a waggle-stream/v1 movement stream
	// (<id>.wstream next to its checkpoint chain) and enables the
	// spectate endpoint tailing it. The stream survives eviction —
	// resuming reopens it in append mode — so spectators can follow a
	// session whether or not it is resident.
	Stream bool
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 2 * runtime.GOMAXPROCS(0)
		if o.Shards < 4 {
			o.Shards = 4
		}
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 128
	}
	if o.MaxSessions <= 0 {
		o.MaxSessions = 16384
	}
	if o.MaxRobots <= 0 {
		o.MaxRobots = 128
	}
	if o.StepBudget <= 0 {
		o.StepBudget = 100_000
	}
	if o.MaxStepsPerRequest <= 0 {
		o.MaxStepsPerRequest = 10_000
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.IdleAfter <= 0 {
		o.IdleAfter = 2 * time.Minute
	}
	if o.EvictScan <= 0 {
		o.EvictScan = time.Second
	}
	if o.MaxObserveWait <= 0 {
		o.MaxObserveWait = 30 * time.Second
	}
	return o
}

// Submission failure modes, mapped to HTTP statuses by the API layer.
var (
	errDraining = errors.New("serve: server is draining")
	errBusy     = errors.New("serve: shard queue full")
	errExpired  = errors.New("serve: request deadline expired before execution")
)

// task is one unit of session work bound for a shard worker.
type task struct {
	ctx      context.Context
	fn       func()
	executed bool // set by the worker before closing done
	done     chan struct{}
}

// shard is one worker of the bounded pool.
type shard struct {
	tasks chan *task
	quit  chan struct{}
	done  chan struct{}
}

// Server is the multi-tenant session daemon. Create one with New,
// mount Handler, and stop it with Shutdown (graceful) or Abort (the
// test double of kill -9).
type Server struct {
	opts    Options
	ob      *obs.Observer
	m       metrics
	limiter *bucket

	// taskMu gates submission against draining: submitters hold the
	// read side, Shutdown/Abort take the write side to flip draining
	// and then wait out the in-flight count.
	taskMu   sync.RWMutex
	draining bool
	aborted  atomic.Bool
	inflight sync.WaitGroup
	shards   []*shard

	mu       sync.RWMutex
	sessions map[string]*session

	active  atomic.Int64 // live (non-evicted) sessions
	evicted atomic.Int64 // evicted sessions still resumable

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// New builds a Server, recovers any checkpointed sessions found in
// opts.Dir (lazily: they register as evicted and resume on first
// touch), and starts its worker pool and eviction janitor. Metrics are
// registered on ob's registry (required).
func New(opts Options, ob *obs.Observer) (*Server, error) {
	if opts.Dir == "" {
		return nil, errors.New("serve: Options.Dir is required")
	}
	if ob == nil {
		return nil, errors.New("serve: nil observer")
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
	}
	s := &Server{
		opts:        opts,
		ob:          ob,
		m:           newMetrics(ob.Registry()),
		limiter:     newBucket(opts.Rate, opts.Burst),
		sessions:    make(map[string]*session),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.shards = make([]*shard, opts.Shards)
	for i := range s.shards {
		sh := &shard{
			tasks: make(chan *task, opts.QueueDepth),
			quit:  make(chan struct{}),
			done:  make(chan struct{}),
		}
		s.shards[i] = sh
		go s.worker(sh)
	}
	go s.janitor()
	return s, nil
}

// recover scans the checkpoint directory and registers every chain
// file as an evicted session, to be resumed on first touch.
func (s *Server) recover() error {
	ents, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return fmt.Errorf("serve: scan checkpoint dir: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		id := strings.TrimSuffix(name, ckptSuffix)
		if !validSessionID(id) {
			continue
		}
		sess := &session{
			id:    id,
			shard: shardOf(id, s.opts.Shards),
			path:  filepath.Join(s.opts.Dir, name),
		}
		if s.opts.Stream {
			sess.streamPath = filepath.Join(s.opts.Dir, id+streamSuffix)
		}
		sess.evicted.Store(true)
		sess.touch()
		s.sessions[id] = sess
		s.evicted.Add(1)
		s.m.Recovered.Inc()
	}
	s.publishGauges()
	return nil
}

// worker drains one shard's queue until quit, then finishes whatever
// is still queued (Shutdown relies on this; Abort flips `aborted`
// first so the leftovers are skipped, not executed).
func (s *Server) worker(sh *shard) {
	defer close(sh.done)
	for {
		select {
		case t := <-sh.tasks:
			s.exec(t)
		case <-sh.quit:
			for {
				select {
				case t := <-sh.tasks:
					s.exec(t)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) exec(t *task) {
	defer s.inflight.Done()
	if !s.aborted.Load() && (t.ctx == nil || t.ctx.Err() == nil) {
		t.fn()
		t.executed = true
	}
	close(t.done)
}

// run executes fn on the session's shard worker, blocking until it
// completes. It fails fast with errDraining when the server is
// shutting down, errBusy when the shard queue is full (backpressure),
// and errExpired when ctx expired before the worker got to fn.
func (s *Server) run(ctx context.Context, shardIdx int, fn func()) error {
	s.taskMu.RLock()
	if s.draining {
		s.taskMu.RUnlock()
		return errDraining
	}
	t := &task{ctx: ctx, fn: fn, done: make(chan struct{})}
	s.inflight.Add(1)
	select {
	case s.shards[shardIdx].tasks <- t:
		s.taskMu.RUnlock()
	default:
		s.inflight.Done()
		s.taskMu.RUnlock()
		return errBusy
	}
	<-t.done
	if !t.executed {
		return errExpired
	}
	return nil
}

// janitor periodically folds idle sessions into their checkpoint
// chains.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	tick := time.NewTicker(s.opts.EvictScan)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.EvictIdle(s.opts.IdleAfter)
		case <-s.janitorStop:
			return
		}
	}
}

// EvictIdle evicts every live session untouched for at least olderThan
// (0 evicts everything currently live) and reports how many sessions
// it evicted. Eviction runs on each session's own shard, so it never
// races a request; a session touched between the scan and the evict
// task re-checks its idleness and stays live.
func (s *Server) EvictIdle(olderThan time.Duration) int {
	cutoff := time.Now().Add(-olderThan)
	var victims []*session
	s.mu.RLock()
	for _, sess := range s.sessions {
		if !sess.evicted.Load() && sess.lastTouch().Before(cutoff) {
			victims = append(victims, sess)
		}
	}
	s.mu.RUnlock()
	n := 0
	for _, sess := range victims {
		sess := sess
		evictedNow := false
		err := s.run(context.Background(), sess.shard, func() {
			// Idleness is re-derived at execution time, not against the
			// scan-time cutoff: a request that touched the session while
			// this task sat in the shard queue has made it non-idle, and
			// the stale cutoff would drift further into the past the
			// longer the queue wait, evicting sessions that were just
			// used.
			if sess.deleted.Load() || sess.evicted.Load() ||
				sess.lastTouch().After(time.Now().Add(-olderThan)) {
				return
			}
			if err := sess.evict(); err != nil {
				// The session stays live; the next scan retries.
				return
			}
			evictedNow = true
			s.active.Add(-1)
			s.evicted.Add(1)
			s.m.Evictions.Inc()
			s.publishGauges()
		})
		// Count sessions actually evicted, not eviction tasks that ran
		// and then declined (touched in the meantime, already gone).
		if err == nil && evictedNow {
			n++
		}
	}
	return n
}

// Counts returns the number of live and evicted sessions.
func (s *Server) Counts() (active, evicted int) {
	return int(s.active.Load()), int(s.evicted.Load())
}

// Draining reports whether the server has stopped accepting work.
func (s *Server) Draining() bool {
	s.taskMu.RLock()
	defer s.taskMu.RUnlock()
	return s.draining
}

// Shutdown degrades gracefully: new work is rejected with 503, the
// janitor stops, every in-flight and queued op drains (bounded by
// ctx), the workers exit, and every live session is folded into its
// checkpoint chain so a restarted server resumes byte-identically.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.beginDrain() {
		return nil
	}
	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
	s.stopWorkers()
	// Workers are stopped and submission is closed: sessions are safe
	// to touch from here.
	var firstErr error
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, sess := range s.sessions {
		if sess.deleted.Load() || sess.evicted.Load() {
			continue
		}
		if err := sess.checkpoint(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("serve: final checkpoint of %s: %w", sess.id, err)
		}
		if sw := sess.swarm.Stream(); sw != nil {
			if err := sw.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("serve: close stream of %s: %w", sess.id, err)
			}
		}
	}
	return firstErr
}

// Abort is the test double of kill -9: it stops the server without
// draining or final checkpoints. Queued-but-unexecuted tasks are
// released as skipped. On-disk chains stay valid — every acknowledged
// mutation already appended its delta — so a new Server on the same
// Dir recovers every session.
func (s *Server) Abort() {
	if !s.beginDrain() {
		return
	}
	s.aborted.Store(true)
	s.stopWorkers()
}

// beginDrain flips the draining gate; false when already draining.
func (s *Server) beginDrain() bool {
	s.taskMu.Lock()
	if s.draining {
		s.taskMu.Unlock()
		return false
	}
	s.draining = true
	s.taskMu.Unlock()
	close(s.janitorStop)
	<-s.janitorDone
	return true
}

func (s *Server) stopWorkers() {
	for _, sh := range s.shards {
		close(sh.quit)
	}
	for _, sh := range s.shards {
		<-sh.done
	}
}

func (s *Server) publishGauges() {
	s.m.SessionsActive.Set(float64(s.active.Load()))
	s.m.SessionsEvicted.Set(float64(s.evicted.Load()))
}

const (
	ckptSuffix   = ".wck"
	streamSuffix = ".wstream"
)

// newSessionID returns 16 hex chars of crypto/rand entropy.
func newSessionID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("serve: session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

func validSessionID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func shardOf(id string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(shards))
}

// bucket is a token-bucket rate limiter. A nil bucket (Rate 0) admits
// everything.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate float64, burst int) *bucket {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = int(rate)
		if burst < 1 {
			burst = 1
		}
	}
	return &bucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

// take admits one request, or reports how long until a token is due.
func (b *bucket) take() (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}
