package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// spectate issues one long-poll spectate request.
func spectate(t *testing.T, sessURL, query string) SpectateResponse {
	t.Helper()
	var resp SpectateResponse
	status, _ := do(t, "GET", sessURL+"/spectate"+query, nil, &resp)
	if status != http.StatusOK {
		t.Fatalf("spectate%s: status %d", query, status)
	}
	return resp
}

// rollPositions replays a spectate batch: seed from its first keyframe,
// then apply every move.
func rollPositions(t *testing.T, recs []SpectateRecord) [][2]float64 {
	t.Helper()
	if len(recs) == 0 || recs[0].Kind != "keyframe" {
		t.Fatalf("batch does not start at a keyframe: %+v", recs)
	}
	pos := append([][2]float64(nil), recs[0].Positions...)
	for _, rec := range recs[1:] {
		for _, m := range rec.Moves {
			pos[m.Robot] = [2]float64{m.X, m.Y}
		}
	}
	return pos
}

// TestSpectateLifecycle drives the spectate endpoint through the whole
// session lifecycle: live tailing from offset 0, mid-stream join at the
// latest keyframe, spectating an evicted session without resuming it,
// the stream growing across an evict/resume cycle, and stream-file
// cleanup on delete.
func TestSpectateLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Options{Dir: dir, Stream: true})
	created := createSession(t, ts.URL, twoRobotConfig(9))
	sessURL := ts.URL + "/v1/sessions/" + created.ID
	streamFile := filepath.Join(dir, created.ID+streamSuffix)
	if _, err := os.Stat(streamFile); err != nil {
		t.Fatalf("create did not open a stream file: %v", err)
	}

	if status, _ := do(t, "POST", sessURL+"/step", StepRequest{Steps: 20}, nil); status != http.StatusOK {
		t.Fatal("step failed")
	}
	live := observeDigest(t, sessURL)

	// Tail from the beginning: header, instant-0 keyframe, then the 20
	// step records; rolling the moves reproduces the observed positions.
	full := spectate(t, sessURL, "?offset=0")
	if len(full.Records) < 22 || full.Records[0].Kind != "header" {
		t.Fatalf("full tail: %d records, first %q", len(full.Records), full.Records[0].Kind)
	}
	steps := 0
	for _, rec := range full.Records {
		if rec.Kind == "step" {
			steps++
		}
	}
	if steps != 20 {
		t.Fatalf("full tail holds %d step records, want 20", steps)
	}
	pos := rollPositions(t, full.Records[1:])
	for i, p := range live.Positions {
		if pos[i] != p {
			t.Fatalf("replayed position %d = %v, observed %v", i, pos[i], p)
		}
	}

	// Mid-stream join: offset -1 starts at the latest keyframe, which
	// carries the full configuration.
	join := spectate(t, sessURL, "?offset=-1")
	if len(join.Records) == 0 || join.Records[0].Kind != "keyframe" {
		t.Fatalf("join batch: %+v", join.Records)
	}
	if got := rollPositions(t, join.Records); len(got) != 2 {
		t.Fatalf("join keyframe carries %d positions", len(got))
	}
	if join.NextOffset != full.NextOffset {
		t.Fatalf("join tail ends at %d, full tail at %d", join.NextOffset, full.NextOffset)
	}

	// Spectating an evicted session reads the file without resuming it.
	if n := s.EvictIdle(0); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	// Eviction closed the stream, appending its closing keyframe — the
	// session ran WithTrace, so that keyframe carries the trace digest.
	evicted := spectate(t, sessURL, "?offset=0")
	if len(evicted.Records) != len(full.Records)+1 {
		t.Fatalf("evicted tail: %d records, want %d", len(evicted.Records), len(full.Records)+1)
	}
	closing := evicted.Records[len(evicted.Records)-1]
	if closing.Kind != "keyframe" || closing.Digest != live.Digest {
		t.Fatalf("closing keyframe %+v, want digest %s", closing, live.Digest)
	}
	var info InfoResponse
	if status, _ := do(t, "GET", sessURL, nil, &info); status != http.StatusOK || info.State != "evicted" {
		t.Fatalf("spectate resumed the session: state %q", info.State)
	}

	// Touching the session resumes it and reopens the stream in append
	// mode: tailing from the old end yields the reopen keyframe and the
	// new steps.
	if status, _ := do(t, "POST", sessURL+"/step", StepRequest{Steps: 5}, nil); status != http.StatusOK {
		t.Fatal("post-evict step failed")
	}
	cont := spectate(t, sessURL, "?offset="+jsonInt(full.NextOffset))
	if len(cont.Records) == 0 || cont.Records[0].Kind != "keyframe" {
		t.Fatalf("resumed stream does not reopen with a keyframe: %+v", cont.Records)
	}
	after := observeDigest(t, sessURL)
	pos = rollPositions(t, cont.Records)
	for i, p := range after.Positions {
		if pos[i] != p {
			t.Fatalf("post-resume position %d = %v, observed %v", i, pos[i], p)
		}
	}

	if status, _ := do(t, "DELETE", sessURL, nil, nil); status != http.StatusNoContent {
		t.Fatal("delete failed")
	}
	if status, _ := do(t, "GET", sessURL+"/spectate", nil, nil); status != http.StatusNotFound {
		t.Fatal("spectate on deleted session not 404")
	}
	if _, err := os.Stat(streamFile); !os.IsNotExist(err) {
		t.Fatalf("delete left the stream file behind: %v", err)
	}
	if s.m.Spectates.Value() == 0 {
		t.Fatal("spectate counter not incremented")
	}
}

func jsonInt(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestSpectateWithoutStream pins the 404 on servers running without
// Options.Stream.
func TestSpectateWithoutStream(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	created := createSession(t, ts.URL, twoRobotConfig(1))
	status, _ := do(t, "GET", ts.URL+"/v1/sessions/"+created.ID+"/spectate", nil, nil)
	if status != http.StatusNotFound {
		t.Fatalf("spectate without streaming: status %d, want 404", status)
	}
}

// TestSpectateLongPollWakes pins the live-tail path: a spectator parked
// at the stream's end returns as soon as a concurrent step appends
// records, well before its wait expires.
func TestSpectateLongPollWakes(t *testing.T) {
	_, ts := newTestServer(t, Options{Stream: true})
	created := createSession(t, ts.URL, twoRobotConfig(4))
	sessURL := ts.URL + "/v1/sessions/" + created.ID
	end := spectate(t, sessURL, "?offset=-1").NextOffset

	done := make(chan SpectateResponse, 1)
	go func() {
		var resp SpectateResponse
		if status, _ := do(t, "GET", sessURL+"/spectate?wait=10s&offset="+jsonInt(end), nil, &resp); status == http.StatusOK {
			done <- resp
		}
	}()
	deadline := time.After(15 * time.Second)
	for {
		select {
		case resp := <-done:
			if len(resp.Records) == 0 {
				t.Fatalf("long-poll woke without records: %+v", resp)
			}
			if resp.NextOffset <= end {
				t.Fatalf("next offset did not advance: %d <= %d", resp.NextOffset, end)
			}
			return
		case <-deadline:
			t.Fatal("spectate long-poll never returned")
		default:
		}
		if status, _ := do(t, "POST", sessURL+"/step", StepRequest{Steps: 1}, nil); status != http.StatusOK {
			t.Fatal("step failed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSpectateSSE pins the server-sent-events variant: one event per
// record, ids carrying resume offsets, and a terminal end event.
func TestSpectateSSE(t *testing.T) {
	_, ts := newTestServer(t, Options{Stream: true})
	created := createSession(t, ts.URL, twoRobotConfig(2))
	sessURL := ts.URL + "/v1/sessions/" + created.ID
	if status, _ := do(t, "POST", sessURL+"/step", StepRequest{Steps: 3}, nil); status != http.StatusOK {
		t.Fatal("step failed")
	}
	resp, err := http.Get(sessURL + "/spectate?sse=1&offset=0&wait=0s")
	if err != nil {
		t.Fatalf("sse: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	events, ends := 0, 0
	var lastID string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			lastID = strings.TrimPrefix(line, "id: ")
			events++
		case line == "event: end":
			ends++
		}
	}
	if events < 5 { // header, keyframe, 3 steps
		t.Fatalf("sse delivered %d events, want >= 5", events)
	}
	if ends != 1 {
		t.Fatalf("sse delivered %d end events, want 1", ends)
	}
	// The last event id is the resume offset: a reconnect from there
	// has nothing new to read.
	cont := spectate(t, sessURL, "?offset="+lastID)
	if len(cont.Records) != 0 {
		t.Fatalf("resume from last event id replays %d records", len(cont.Records))
	}
}

// TestObserveWaitBoundary pins the long-poll deadline fix: an
// unsatisfied wait returns 200 (not an error) once — and not before —
// the single derived deadline passes, and wait=0 answers immediately
// instead of sleeping a poll period.
func TestObserveWaitBoundary(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	created := createSession(t, ts.URL, twoRobotConfig(3))
	sessURL := ts.URL + "/v1/sessions/" + created.ID

	start := time.Now()
	var o ObserveResponse
	status, _ := do(t, "GET", sessURL+"/observe?min_delivered=5&wait=0s", nil, &o)
	if status != http.StatusOK {
		t.Fatalf("wait=0: status %d", status)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("wait=0 took %v", el)
	}

	const wait = 150 * time.Millisecond
	start = time.Now()
	status, _ = do(t, "GET", sessURL+"/observe?min_delivered=5&wait=150ms", nil, &o)
	el := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("unsatisfied wait: status %d", status)
	}
	if el < wait {
		t.Fatalf("unsatisfied wait returned after %v, before its %v deadline", el, wait)
	}
	if el > wait+5*time.Second {
		t.Fatalf("unsatisfied wait overshot its deadline: %v", el)
	}
	if len(o.Delivered) != 0 {
		t.Fatalf("unexpected deliveries: %+v", o.Delivered)
	}
}

// TestRetryAfterComputed pins that every shed path derives Retry-After
// from the configured timescale of what is being waited out (via
// internal/retry), not a hardcoded constant.
func TestRetryAfterComputed(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Shards:         1,
		QueueDepth:     1,
		EvictScan:      3 * time.Second,
		RequestTimeout: 7 * time.Second,
	})
	created := createSession(t, ts.URL, twoRobotConfig(6))
	sessURL := ts.URL + "/v1/sessions/" + created.ID

	// Queue-full 503: the hint is the janitor period (capacity clears
	// on that timescale).
	release := make(chan struct{})
	occupied := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_ = s.run(context.Background(), 0, func() { close(occupied); <-release })
	}()
	<-occupied
	go func() {
		defer wg.Done()
		_ = s.run(context.Background(), 0, func() {})
	}()
	for len(s.shards[0].tasks) == 0 {
		time.Sleep(time.Millisecond)
	}
	status, h := do(t, "POST", sessURL+"/step", StepRequest{Steps: 1}, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("full queue: status %d", status)
	}
	if got := h.Get("Retry-After"); got != "3" {
		t.Fatalf("full-queue Retry-After = %q, want %q (ceil of EvictScan)", got, "3")
	}
	close(release)
	wg.Wait()

	// Draining 503: the hint is the request timeout (the drain bound).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	status, h = do(t, "GET", ts.URL+"/v1/sessions", nil, nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("draining: status %d", status)
	}
	if got := h.Get("Retry-After"); got != "7" {
		t.Fatalf("draining Retry-After = %q, want %q (ceil of RequestTimeout)", got, "7")
	}
}

// TestTouchDuringEvictStaysLive pins the eviction TOCTOU fix: a
// session touched while its evict task waits in the shard queue is
// re-checked against an execution-time cutoff and stays live, and
// EvictIdle reports only sessions actually folded.
func TestTouchDuringEvictStaysLive(t *testing.T) {
	s, ts := newTestServer(t, Options{Shards: 1, QueueDepth: 8})
	created := createSession(t, ts.URL, twoRobotConfig(8))
	s.mu.RLock()
	sess := s.sessions[created.ID]
	s.mu.RUnlock()

	// Backdate the session so the scan sees it idle, then park the
	// worker so the evict task sits in the queue.
	sess.touchNanos.Store(time.Now().Add(-time.Minute).UnixNano())
	release := make(chan struct{})
	occupied := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.run(context.Background(), 0, func() { close(occupied); <-release })
	}()
	<-occupied

	nCh := make(chan int, 1)
	go func() { nCh <- s.EvictIdle(10 * time.Second) }()
	for len(s.shards[0].tasks) == 0 {
		time.Sleep(time.Millisecond)
	}
	// A request touches the session while the evict is pending...
	sess.touch()
	close(release)
	wg.Wait()
	// ...so the evict task must decline, and EvictIdle must not count
	// the declined task as an eviction.
	if n := <-nCh; n != 0 {
		t.Fatalf("EvictIdle evicted %d sessions after a touch, want 0", n)
	}
	if sess.evicted.Load() {
		t.Fatal("touched session was evicted anyway")
	}
	if v := s.m.Evictions.Value(); v != 0 {
		t.Fatalf("evictions counter %v after declined evict", v)
	}

	// EvictIdle(0) means "fold everything currently live" and is exempt
	// from the idleness re-check (every touch stamp is in the past).
	if n := s.EvictIdle(0); n != 1 {
		t.Fatalf("EvictIdle(0) evicted %d, want 1", n)
	}
	if !sess.evicted.Load() {
		t.Fatal("EvictIdle(0) left the session live")
	}
}

// TestTouchEvictRace hammers concurrent touches (steps and observes)
// against concurrent evictions; run under -race this drives the
// touch/evict interleavings the deterministic test can only sample.
func TestTouchEvictRace(t *testing.T) {
	s, ts := newTestServer(t, Options{Stream: true})
	created := createSession(t, ts.URL, twoRobotConfig(5))
	sessURL := ts.URL + "/v1/sessions/" + created.ID

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.EvictIdle(0)
			}
		}
	}()
	for i := 0; i < 40; i++ {
		if status, _ := do(t, "POST", sessURL+"/step", StepRequest{Steps: 3}, nil); status != http.StatusOK {
			t.Fatalf("step %d: status %d", i, status)
		}
		if status, _ := do(t, "GET", sessURL+"/observe", nil, nil); status != http.StatusOK {
			t.Fatalf("observe %d: status %d", i, status)
		}
		spectate(t, sessURL, "?offset=-1")
	}
	close(stop)
	wg.Wait()
	if o := observeDigest(t, sessURL); o.Time != 120 {
		t.Fatalf("session time %d after hammer, want 120", o.Time)
	}
}
