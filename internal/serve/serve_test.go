package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"waggle/internal/obs"
)

// newTestServer builds a Server on a temp dir plus an httptest front
// end, cleaning both up with the test.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	// Keep the janitor quiet unless the test opts in: a long idle
	// threshold means only explicit EvictIdle calls evict.
	if opts.IdleAfter == 0 {
		opts.IdleAfter = time.Hour
	}
	s, err := New(opts, obs.New(256))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// do issues one JSON request and decodes the reply into out (skipped
// when out is nil), returning the status code and headers.
func do(t *testing.T, method, url string, body, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("unmarshal %q: %v", raw, err)
		}
	}
	return resp.StatusCode, resp.Header
}

func createSession(t *testing.T, base string, req CreateRequest) CreateResponse {
	t.Helper()
	var resp CreateResponse
	status, _ := do(t, "POST", base+"/v1/sessions", req, &resp)
	if status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	if resp.ID == "" || !validSessionID(resp.ID) {
		t.Fatalf("create: bad id %q", resp.ID)
	}
	return resp
}

func twoRobotConfig(seed int64) CreateRequest {
	return CreateRequest{
		Positions:   [][2]float64{{0, 0}, {10, 0}},
		Synchronous: true,
		Seed:        seed,
		Trace:       true,
	}
}

// TestSessionLifecycleAPI drives one session end to end: create, step,
// send, step-until-delivered, observe, delete.
func TestSessionLifecycleAPI(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	created := createSession(t, ts.URL, twoRobotConfig(7))
	if created.N != 2 || created.Protocol != "sync2" {
		t.Fatalf("created %+v", created)
	}
	sessURL := ts.URL + "/v1/sessions/" + created.ID

	var step StepResponse
	if status, _ := do(t, "POST", sessURL+"/step", StepRequest{Steps: 3}, &step); status != http.StatusOK {
		t.Fatalf("step: status %d", status)
	}
	if step.Time != 3 || step.Stepped != 3 {
		t.Fatalf("step resp %+v", step)
	}

	var send SendResponse
	if status, _ := do(t, "POST", sessURL+"/send", SendRequest{From: 0, To: 1, Payload: []byte("HI")}, &send); status != http.StatusAccepted {
		t.Fatalf("send: status %d", status)
	}

	var obsv ObserveResponse
	for i := 0; i < 20; i++ {
		if status, _ := do(t, "POST", sessURL+"/step", StepRequest{Steps: 5000}, &step); status != http.StatusOK {
			t.Fatalf("step loop: status %d", status)
		}
		if status, _ := do(t, "GET", sessURL+"/observe", nil, &obsv); status != http.StatusOK {
			t.Fatalf("observe: status %d", status)
		}
		if len(obsv.Delivered) > 0 {
			break
		}
	}
	if len(obsv.Delivered) != 1 || string(obsv.Delivered[0].Payload) != "HI" {
		t.Fatalf("delivered %+v", obsv.Delivered)
	}
	if obsv.State != "active" || obsv.Time != step.Time || len(obsv.Positions) != 2 {
		t.Fatalf("observe %+v", obsv)
	}

	var info InfoResponse
	if status, _ := do(t, "GET", sessURL, nil, &info); status != http.StatusOK || info.N != 2 {
		t.Fatalf("info %+v", info)
	}
	var list ListResponse
	if status, _ := do(t, "GET", ts.URL+"/v1/sessions", nil, &list); status != http.StatusOK || list.Active != 1 || len(list.Sessions) != 1 {
		t.Fatalf("list %+v", list)
	}

	if status, _ := do(t, "DELETE", sessURL, nil, nil); status != http.StatusNoContent {
		t.Fatal("delete failed")
	}
	if status, _ := do(t, "GET", sessURL, nil, nil); status != http.StatusNotFound {
		t.Fatal("deleted session still resolvable")
	}
}

// observeDigest fetches the full observable state including the trace
// digest.
func observeDigest(t *testing.T, sessURL string) ObserveResponse {
	t.Helper()
	var o ObserveResponse
	if status, _ := do(t, "GET", sessURL+"/observe?digest=1", nil, &o); status != http.StatusOK {
		t.Fatalf("observe: status %d", status)
	}
	return o
}

// TestEvictResumeTransparent pins the tentpole guarantee: a session
// evicted to its delta chain between every operation ends with
// observable state byte-identical (positions, time, deliveries, trace
// digest) to an unevicted control session driven through the same ops
// on a second server.
func TestEvictResumeTransparent(t *testing.T) {
	sEvict, tsEvict := newTestServer(t, Options{})
	_, tsCtl := newTestServer(t, Options{})

	cfg := CreateRequest{
		Positions: [][2]float64{{0, 0}, {8, 0}, {0, 9}, {7, 7}},
		Seed:      42,
		Trace:     true,
	}
	a := createSession(t, tsEvict.URL, cfg)
	b := createSession(t, tsCtl.URL, cfg)
	aURL := tsEvict.URL + "/v1/sessions/" + a.ID
	bURL := tsCtl.URL + "/v1/sessions/" + b.ID

	ops := []struct {
		steps   int
		send    bool
		payload string
	}{
		{steps: 50}, {send: true, payload: "alpha"}, {steps: 400},
		{send: true, payload: "beta"}, {steps: 700}, {steps: 123},
	}
	for i, op := range ops {
		// Fold the session under test into its chain before every op:
		// each op transparently resumes it.
		if n := sEvict.EvictIdle(0); n != 1 {
			t.Fatalf("op %d: evicted %d sessions, want 1", i, n)
		}
		var info InfoResponse
		if status, _ := do(t, "GET", aURL, nil, &info); status != http.StatusOK || info.State != "evicted" {
			t.Fatalf("op %d: state %q after evict", i, info.State)
		}
		for _, u := range []string{aURL, bURL} {
			if op.send {
				if status, _ := do(t, "POST", u+"/send", SendRequest{From: 0, To: 1, Payload: []byte(op.payload)}, nil); status != http.StatusAccepted {
					t.Fatalf("op %d send on %s: status %d", i, u, status)
				}
			} else {
				if status, _ := do(t, "POST", u+"/step", StepRequest{Steps: op.steps}, nil); status != http.StatusOK {
					t.Fatalf("op %d step on %s: status %d", i, u, status)
				}
			}
		}
	}

	got, want := observeDigest(t, aURL), observeDigest(t, bURL)
	if got.Resumes != int64(len(ops)) {
		t.Fatalf("resumes %d, want %d", got.Resumes, len(ops))
	}
	if want.Resumes != 0 {
		t.Fatalf("control was resumed %d times", want.Resumes)
	}
	got.ID, got.Resumes, got.State = "", 0, ""
	want.ID, want.Resumes, want.State = "", 0, ""
	gj, _ := json.Marshal(got)
	wj, _ := json.Marshal(want)
	if !bytes.Equal(gj, wj) {
		t.Fatalf("evicted run diverged from control:\n got %s\nwant %s", gj, wj)
	}
	if got.Digest == "" {
		t.Fatal("trace digest missing (trace was requested)")
	}
}

// TestBackpressureQueueFull pins that a full shard queue sheds load
// with 503 + Retry-After instead of queueing without bound. The single
// worker is parked on a blocking task and the depth-1 queue is filled,
// so the HTTP step deterministically finds no room.
func TestBackpressureQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Options{Shards: 1, QueueDepth: 1})
	created := createSession(t, ts.URL, CreateRequest{
		Positions: [][2]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}},
		Seed:      3,
	})
	sessURL := ts.URL + "/v1/sessions/" + created.ID

	release := make(chan struct{})
	occupied := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_ = s.run(context.Background(), 0, func() { close(occupied); <-release })
	}()
	<-occupied // the only worker is now busy
	go func() {
		defer wg.Done()
		_ = s.run(context.Background(), 0, func() {})
	}()
	for len(s.shards[0].tasks) == 0 { // and the queue is now full
		time.Sleep(time.Millisecond)
	}

	b, _ := json.Marshal(StepRequest{Steps: 1})
	resp, err := http.Post(sessURL+"/step", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("step: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("step against full queue: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if v := s.m.Shed.Value(); v == 0 {
		t.Fatal("shed counter not incremented")
	}
	close(release)
	wg.Wait()
}

// TestRunDeadlineExpired pins that queued work whose deadline passed is
// skipped, surfacing errExpired instead of executing late.
func TestRunDeadlineExpired(t *testing.T) {
	s, _ := newTestServer(t, Options{Shards: 1, QueueDepth: 4})
	release := make(chan struct{})
	occupied := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.run(context.Background(), 0, func() { close(occupied); <-release })
	}()
	<-occupied

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before the worker can reach it
	ran := false
	errCh := make(chan error, 1)
	go func() { errCh <- s.run(ctx, 0, func() { ran = true }) }()
	time.Sleep(10 * time.Millisecond) // let it enqueue behind the blocker
	close(release)
	wg.Wait()
	if err := <-errCh; err != errExpired {
		t.Fatalf("run with expired ctx: %v, want errExpired", err)
	}
	if ran {
		t.Fatal("expired task was executed")
	}
}

// TestRateLimit429 pins token-bucket throttling: over-rate traffic
// gets 429 + Retry-After, not service collapse.
func TestRateLimit429(t *testing.T) {
	s, ts := newTestServer(t, Options{Rate: 1, Burst: 2})
	st1, _ := do(t, "GET", ts.URL+"/v1/sessions", nil, nil)
	st2, _ := do(t, "GET", ts.URL+"/v1/sessions", nil, nil)
	st3, h := do(t, "GET", ts.URL+"/v1/sessions", nil, nil)
	if st1 != http.StatusOK || st2 != http.StatusOK {
		t.Fatalf("burst requests failed: %d %d", st1, st2)
	}
	if st3 != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429", st3)
	}
	if h.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if s.m.Throttled.Value() == 0 {
		t.Fatal("throttled counter not incremented")
	}
}

// TestStepBudgetExhaustion pins the per-session lifetime budget.
func TestStepBudgetExhaustion(t *testing.T) {
	_, ts := newTestServer(t, Options{StepBudget: 100})
	created := createSession(t, ts.URL, twoRobotConfig(1))
	sessURL := ts.URL + "/v1/sessions/" + created.ID
	if status, _ := do(t, "POST", sessURL+"/step", StepRequest{Steps: 100}, nil); status != http.StatusOK {
		t.Fatalf("in-budget step: status %d", status)
	}
	var e errResponse
	status, _ := do(t, "POST", sessURL+"/step", StepRequest{Steps: 1}, &e)
	if status != http.StatusForbidden {
		t.Fatalf("over-budget step: status %d (%s)", status, e.Error)
	}
}

// TestShutdownChecksAndRecovers pins graceful shutdown: after
// Shutdown, requests are rejected 503, and a new server on the same
// dir recovers the session with its state intact.
func TestShutdownCheckpointsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Options{Dir: dir})
	created := createSession(t, ts.URL, twoRobotConfig(11))
	sessURL := ts.URL + "/v1/sessions/" + created.ID
	if status, _ := do(t, "POST", sessURL+"/step", StepRequest{Steps: 77}, nil); status != http.StatusOK {
		t.Fatal("step failed")
	}
	before := observeDigest(t, sessURL)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if status, _ := do(t, "GET", ts.URL+"/v1/sessions", nil, nil); status != http.StatusServiceUnavailable {
		t.Fatalf("draining server answered %d, want 503", status)
	}

	s2, ts2 := newTestServer(t, Options{Dir: dir})
	active, evicted := s2.Counts()
	if active != 0 || evicted != 1 {
		t.Fatalf("recovered counts active=%d evicted=%d", active, evicted)
	}
	after := observeDigest(t, ts2.URL+"/v1/sessions/"+created.ID)
	if after.Time != before.Time || after.Digest != before.Digest {
		t.Fatalf("recovered state diverged: before t=%d %s, after t=%d %s",
			before.Time, before.Digest, after.Time, after.Digest)
	}
	if after.Resumes != 1 {
		t.Fatalf("recovered session resumes=%d, want 1", after.Resumes)
	}
}

// TestObserveLongPoll pins that observe?min_delivered=1&wait=...
// returns early once a concurrent step delivers the pending message.
func TestObserveLongPoll(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	created := createSession(t, ts.URL, twoRobotConfig(5))
	sessURL := ts.URL + "/v1/sessions/" + created.ID
	if status, _ := do(t, "POST", sessURL+"/send", SendRequest{From: 0, To: 1, Payload: []byte("x")}, nil); status != http.StatusAccepted {
		t.Fatal("send failed")
	}
	done := make(chan ObserveResponse, 1)
	go func() {
		resp, err := http.Get(sessURL + "/observe?min_delivered=1&wait=10s")
		if err != nil {
			return
		}
		defer resp.Body.Close()
		var o ObserveResponse
		if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&o) == nil {
			done <- o
		}
	}()
	// Step in parallel until delivery; the long-poll should return as
	// soon as the message lands.
	for i := 0; i < 40; i++ {
		select {
		case o := <-done:
			if len(o.Delivered) == 0 {
				t.Fatalf("long-poll returned without delivery: %+v", o)
			}
			return
		default:
		}
		if status, _ := do(t, "POST", sessURL+"/step", StepRequest{Steps: 1000}, nil); status != http.StatusOK {
			t.Fatal("step failed")
		}
	}
	select {
	case o := <-done:
		if len(o.Delivered) == 0 {
			t.Fatal("long-poll returned empty")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("long-poll never returned")
	}
}

// TestValidation pins the 400 paths.
func TestValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxRobots: 8})
	cases := []CreateRequest{
		{},
		{Positions: [][2]float64{{0, 0}}},
		{Positions: make([][2]float64, 9)},
		{Positions: [][2]float64{{0, 0}, {1, 0}}, Protocol: "nope"},
		{Positions: [][2]float64{{0, 0}, {1, 0}}, Engine: "warp"},
		{Positions: [][2]float64{{0, 0}, {1, 0}}, Scheduler: "starver"},
		{Positions: [][2]float64{{0, 0}, {1, 0}}, Sigma: -1},
	}
	for i, c := range cases {
		if status, _ := do(t, "POST", ts.URL+"/v1/sessions", c, nil); status != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400", i, status)
		}
	}
	created := createSession(t, ts.URL, twoRobotConfig(1))
	sessURL := ts.URL + "/v1/sessions/" + created.ID
	if status, _ := do(t, "POST", sessURL+"/step", StepRequest{Steps: -4}, nil); status != http.StatusBadRequest {
		t.Fatal("negative steps accepted")
	}
	if status, _ := do(t, "POST", sessURL+"/send", SendRequest{From: 9, To: 1}, nil); status != http.StatusBadRequest {
		t.Fatal("out-of-range sender accepted")
	}
	if status, _ := do(t, "GET", ts.URL+"/v1/sessions/ffffffffffffffff", nil, nil); status != http.StatusNotFound {
		t.Fatal("unknown session not 404")
	}
}
