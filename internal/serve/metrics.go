package serve

import "waggle/internal/obs"

// metrics is the daemon's instrumentation, registered on the shared
// obs registry so the introspection endpoints (/metrics,
// /metrics.json, /snapshot) expose it alongside any sim metrics.
// Request latency is wall-clock and therefore volatile (excluded from
// deterministic snapshots); the rest counts service events.
type metrics struct {
	// SessionsActive and SessionsEvicted are the current session
	// population by residency.
	SessionsActive, SessionsEvicted *obs.Gauge
	// Created/Evictions/Resumes/Deletes/Recovered count lifecycle
	// transitions; Recovered counts chains adopted from Dir at boot.
	Created, Evictions, Resumes, Deletes, Recovered *obs.Counter
	// Requests counts /v1 API requests; Throttled the 429s from the
	// token bucket; Shed the 503s from full queues, draining, and
	// capacity; Expired the requests whose deadline passed while
	// queued.
	Requests, Throttled, Shed, Expired *obs.Counter
	// Steps counts executed instants across all sessions; Sends the
	// accepted send/broadcast ops; CheckpointBytes the bytes written
	// to chains; Spectates the stream-tail polls served (long-poll
	// and SSE).
	Steps, Sends, CheckpointBytes, Spectates *obs.Counter
	// RequestSeconds is the wall-clock /v1 request latency.
	RequestSeconds *obs.Histogram
}

// requestSecondsBounds spans 50µs–10s: a cached observe sits at the
// bottom, a budget-capped step batch or a chain resume near the top.
var requestSecondsBounds = []float64{
	5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
	5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newMetrics(r *obs.Registry) metrics {
	return metrics{
		SessionsActive:  r.Gauge("waggle_serve_sessions_active", "Live (in-memory) sessions."),
		SessionsEvicted: r.Gauge("waggle_serve_sessions_evicted", "Sessions evicted to checkpoint chains, resumable on touch."),
		Created:         r.Counter("waggle_serve_sessions_created_total", "Sessions created."),
		Evictions:       r.Counter("waggle_serve_evictions_total", "Idle sessions folded into their checkpoint chains."),
		Resumes:         r.Counter("waggle_serve_resumes_total", "Evicted sessions transparently resumed on touch."),
		Deletes:         r.Counter("waggle_serve_deletes_total", "Sessions deleted by clients."),
		Recovered:       r.Counter("waggle_serve_recovered_total", "Checkpoint chains adopted from the data dir at startup."),
		Requests:        r.Counter("waggle_serve_requests_total", "API requests received (before throttling)."),
		Throttled:       r.Counter("waggle_serve_throttled_total", "Requests rejected 429 by the token bucket."),
		Shed:            r.Counter("waggle_serve_shed_total", "Requests rejected 503 (queue full, draining, or at capacity)."),
		Expired:         r.Counter("waggle_serve_deadline_expired_total", "Queued requests skipped because their deadline passed."),
		Steps:           r.Counter("waggle_serve_steps_total", "Simulation instants executed across all sessions."),
		Sends:           r.Counter("waggle_serve_sends_total", "Send/broadcast operations accepted."),
		CheckpointBytes: r.Counter("waggle_serve_checkpoint_bytes_total", "Bytes appended to session checkpoint chains."),
		Spectates:       r.Counter("waggle_serve_spectates_total", "Stream spectate polls served (long-poll and SSE)."),
		RequestSeconds:  r.Histogram("waggle_serve_request_seconds", "Wall-clock /v1 request latency.", requestSecondsBounds, true),
	}
}
