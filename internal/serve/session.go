package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"waggle"
)

// Session failure modes surfaced through the API layer.
var (
	errUnknownSession = errors.New("serve: unknown session")
	errBudget         = errors.New("serve: session step budget exhausted")
)

// session is one hosted swarm. Its lifecycle follows the state machine
// of DESIGN.md §5h: active → idle (untouched past Options.IdleAfter) →
// evicted (folded into the CodecDelta chain at `path`, memory freed) →
// resumed (loaded and replayed on next touch; ≡ active with the resume
// counter bumped). Deletion is terminal from every state.
//
// The atomic fields are readable from any goroutine (the info/list
// endpoints and the janitor scan); swarm and writer are owned by the
// pinned shard worker — every mutation runs there — except during
// Shutdown, which touches them only after the pool has stopped.
// deleted is atomic because the lock-free info/list endpoints read it,
// but it is only ever set on the shard worker.
type session struct {
	id    string
	shard int
	path  string
	// streamPath is the session's waggle-stream/v1 file ("" when the
	// server runs without Options.Stream). The stream outlives
	// eviction: evict closes it, resume reopens it in append mode, and
	// the spectate endpoint tails the file without needing the session
	// resident.
	streamPath string

	touchNanos atomic.Int64
	evicted    atomic.Bool
	deleted    atomic.Bool
	resumes    atomic.Int64
	robots     atomic.Int64

	swarm  *waggle.Swarm
	writer *waggle.CheckpointWriter
}

// touch stamps the session as just-used (the idle clock the janitor
// reads).
func (sess *session) touch() { sess.touchNanos.Store(time.Now().UnixNano()) }

func (sess *session) lastTouch() time.Time { return time.Unix(0, sess.touchNanos.Load()) }

// resume loads the session's checkpoint chain and replays it into a
// live swarm — the transparent half of eviction: the restored run is
// byte-identical to one that was never evicted (internal/ckpt's
// round-trip guarantee). Runs on the shard worker.
func (sess *session) resume() error {
	ck, err := waggle.LoadCheckpoint(sess.path)
	if err != nil {
		return fmt.Errorf("serve: load %s: %w", sess.id, err)
	}
	res, err := waggle.Restore(ck)
	if err != nil {
		return fmt.Errorf("serve: restore %s: %w", sess.id, err)
	}
	w, err := res.Swarm.NewCheckpointWriter(sess.path, waggle.CodecDelta)
	if err != nil {
		return fmt.Errorf("serve: rebuild writer %s: %w", sess.id, err)
	}
	if sess.streamPath != "" {
		// Reopen the movement stream in append mode: the restore replay
		// above did not re-stream history (the file already holds it),
		// and the reopen keyframe is the spectator's re-entry point.
		if _, err := res.Swarm.NewStreamWriter(sess.streamPath); err != nil {
			return fmt.Errorf("serve: reopen stream %s: %w", sess.id, err)
		}
	}
	sess.swarm, sess.writer = res.Swarm, w
	sess.robots.Store(int64(res.Swarm.N()))
	sess.resumes.Add(1)
	sess.evicted.Store(false)
	return nil
}

// evict folds the session into its checkpoint chain and frees the
// in-memory swarm. Runs on the shard worker, only on live sessions.
func (sess *session) evict() error {
	if err := sess.checkpoint(); err != nil {
		return err
	}
	if sw := sess.swarm.Stream(); sw != nil {
		// Best-effort: a failed close must not wedge eviction (stream
		// errors are sticky, so retrying the evict could never succeed)
		// — the resume path's reopen-append truncates whatever torn
		// tail the failure left, exactly as a crash would.
		_ = sw.Close()
	}
	sess.swarm, sess.writer = nil, nil
	sess.evicted.Store(true)
	return nil
}

// checkpoint appends the session's latest state to its chain (a delta
// frame; a base when the chain needs rebasing).
func (sess *session) checkpoint() error {
	if sess.writer == nil {
		return fmt.Errorf("serve: session %s has no checkpoint writer", sess.id)
	}
	return sess.writer.Save()
}

// remove deletes the session's state and chain file. Terminal; runs on
// the shard worker (or after the pool stopped).
func (sess *session) remove() error {
	sess.deleted.Store(true)
	if sess.swarm != nil {
		if sw := sess.swarm.Stream(); sw != nil {
			_ = sw.Close()
		}
	}
	sess.swarm, sess.writer = nil, nil
	if err := os.Remove(sess.path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("serve: remove %s: %w", sess.id, err)
	}
	if sess.streamPath != "" {
		if err := os.Remove(sess.streamPath); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("serve: remove stream %s: %w", sess.id, err)
		}
	}
	return nil
}

// state names the session's current lifecycle state for the API.
func (sess *session) state(idleAfter time.Duration) string {
	switch {
	case sess.deleted.Load():
		return "deleted"
	case sess.evicted.Load():
		return "evicted"
	case time.Since(sess.lastTouch()) >= idleAfter:
		return "idle"
	default:
		return "active"
	}
}

// withSession runs fn on the session's shard with the session live:
// an evicted session is transparently resumed first, and the touch
// stamp is refreshed. fn's error is passed through; submission
// failures (draining/busy/expired) surface as-is.
func (s *Server) withSession(ctx context.Context, id string, fn func(*session) error) error {
	s.mu.RLock()
	sess := s.sessions[id]
	s.mu.RUnlock()
	if sess == nil {
		return errUnknownSession
	}
	var opErr error
	err := s.run(ctx, sess.shard, func() {
		if sess.deleted.Load() {
			opErr = errUnknownSession
			return
		}
		if sess.evicted.Load() {
			if opErr = sess.resume(); opErr != nil {
				return
			}
			s.active.Add(1)
			s.evicted.Add(-1)
			s.m.Resumes.Inc()
			s.publishGauges()
		}
		sess.touch()
		opErr = fn(sess)
	})
	if err != nil {
		return err
	}
	return opErr
}
