package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"waggle"
	"waggle/internal/obs"
	"waggle/internal/retry"
	"waggle/internal/wire"
)

// maxBodyBytes bounds request bodies: session configs and payloads are
// small; anything bigger is hostile.
const maxBodyBytes = 1 << 20

// observePollEvery is the re-check period of a long-poll observe.
const observePollEvery = 25 * time.Millisecond

// CreateRequest is the POST /v1/sessions body. Positions is required
// (2..Options.MaxRobots robots); everything else defaults to the
// library's weakest assumptions. Payloads elsewhere in the API are
// base64 (encoding/json []byte convention).
type CreateRequest struct {
	Positions        [][2]float64 `json:"positions"`
	Synchronous      bool         `json:"synchronous,omitempty"`
	Identified       bool         `json:"identified,omitempty"`
	SenseOfDirection bool         `json:"sense_of_direction,omitempty"`
	Seed             int64        `json:"seed,omitempty"`
	Sigma            float64      `json:"sigma,omitempty"`
	Trace            bool         `json:"trace,omitempty"`
	Protocol         string       `json:"protocol,omitempty"`
	Scheduler        string       `json:"scheduler,omitempty"`
	ActivationProb   float64      `json:"activation_prob,omitempty"`
	Engine           string       `json:"engine,omitempty"`
	Levels           int          `json:"levels,omitempty"`
	BoundedSlices    int          `json:"bounded_slices,omitempty"`
}

// CreateResponse is the POST /v1/sessions reply.
type CreateResponse struct {
	ID       string `json:"id"`
	N        int    `json:"n"`
	Protocol string `json:"protocol"`
}

// StepRequest is the POST /v1/sessions/{id}/step body.
type StepRequest struct {
	// Steps is how many instants to advance (default 1, capped by
	// Options.MaxStepsPerRequest).
	Steps int `json:"steps,omitempty"`
}

// StepResponse is the step reply.
type StepResponse struct {
	Time      int `json:"time"`
	Stepped   int `json:"stepped"`
	Delivered int `json:"delivered"`
}

// SendRequest is the POST /v1/sessions/{id}/send body.
type SendRequest struct {
	From    int    `json:"from"`
	To      int    `json:"to,omitempty"`
	Payload []byte `json:"payload"`
	// All selects the one-to-all diameter transmission instead of a
	// unicast (To is ignored).
	All bool `json:"all,omitempty"`
}

// SendResponse is the send reply.
type SendResponse struct {
	Time int `json:"time"`
}

// WireMessage is one delivered message in API replies.
type WireMessage struct {
	From    int    `json:"from"`
	To      int    `json:"to"`
	Payload []byte `json:"payload"`
}

// ObserveResponse is the GET /v1/sessions/{id}/observe reply: the
// session's externally observable state. Digest is the checkpoint
// trace digest (sessions created with trace only, and only when
// ?digest=1) — two runs with equal digests moved identically.
type ObserveResponse struct {
	ID             string        `json:"id"`
	State          string        `json:"state"`
	Time           int           `json:"time"`
	Resumes        int64         `json:"resumes"`
	StepBudgetLeft int           `json:"step_budget_left"`
	Positions      [][2]float64  `json:"positions"`
	Delivered      []WireMessage `json:"delivered"`
	Digest         string        `json:"digest,omitempty"`
}

// InfoResponse is the lock-free session summary (GET /v1/sessions/{id}
// and the list endpoint). It never touches the session — reading it
// does not reset the idle clock or resume an evicted session.
type InfoResponse struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	N       int64  `json:"n"`
	Resumes int64  `json:"resumes"`
	IdleMS  int64  `json:"idle_ms"`
}

// ListResponse is the GET /v1/sessions reply.
type ListResponse struct {
	Active   int            `json:"active"`
	Evicted  int            `json:"evicted"`
	Sessions []InfoResponse `json:"sessions"`
}

type errResponse struct {
	Error string `json:"error"`
}

// Handler mounts the /v1 session API on the shared obs introspection
// mux (/metrics, /metrics.json, /trace, /snapshot, pprof), so one
// listener serves both the service and its observability.
func (s *Server) Handler() http.Handler {
	mux := obs.Mux(s.ob)
	mux.HandleFunc("POST /v1/sessions", s.timed(s.handleCreate))
	mux.HandleFunc("GET /v1/sessions", s.timed(s.handleList))
	mux.HandleFunc("GET /v1/sessions/{id}", s.timed(s.handleInfo))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.timed(s.handleDelete))
	mux.HandleFunc("POST /v1/sessions/{id}/step", s.timed(s.handleStep))
	mux.HandleFunc("POST /v1/sessions/{id}/send", s.timed(s.handleSend))
	mux.HandleFunc("GET /v1/sessions/{id}/observe", s.timed(s.handleObserve))
	mux.HandleFunc("GET /v1/sessions/{id}/spectate", s.timed(s.handleSpectate))
	return mux
}

// timed wraps a handler with the request counter, the latency
// histogram, the body-size bound, and the overload gates: draining →
// 503, token bucket → 429 with Retry-After.
func (s *Server) timed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		defer func() { s.m.RequestSeconds.Observe(time.Since(start).Seconds()) }()
		s.m.Requests.Inc()
		if s.Draining() {
			s.m.Shed.Inc()
			w.Header().Set("Retry-After", s.retryHintFor(errDraining))
			writeJSON(w, http.StatusServiceUnavailable, errResponse{"server is draining"})
			return
		}
		if ok, retryIn := s.limiter.take(); !ok {
			s.m.Throttled.Inc()
			w.Header().Set("Retry-After", retry.CeilSeconds(retryIn))
			writeJSON(w, http.StatusTooManyRequests, errResponse{"rate limit exceeded"})
			return
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		}
		h(w, r)
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errResponse{"bad request body: " + err.Error()})
		return
	}
	if n := len(req.Positions); n < 2 || n > s.opts.MaxRobots {
		writeJSON(w, http.StatusBadRequest, errResponse{
			fmt.Sprintf("positions: need 2..%d robots, got %d", s.opts.MaxRobots, n)})
		return
	}
	opts, err := buildSwarmOptions(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errResponse{err.Error()})
		return
	}
	s.mu.RLock()
	atCapacity := len(s.sessions) >= s.opts.MaxSessions
	s.mu.RUnlock()
	if atCapacity {
		s.m.Shed.Inc()
		w.Header().Set("Retry-After", s.retryHintFor(nil))
		writeJSON(w, http.StatusServiceUnavailable, errResponse{"session capacity reached"})
		return
	}
	id, err := newSessionID()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errResponse{err.Error()})
		return
	}
	positions := make([]waggle.Point, len(req.Positions))
	for i, p := range req.Positions {
		positions[i] = waggle.Point{X: p[0], Y: p[1]}
	}
	sess := &session{
		id:    id,
		shard: shardOf(id, s.opts.Shards),
		path:  filepath.Join(s.opts.Dir, id+ckptSuffix),
	}
	if s.opts.Stream {
		sess.streamPath = filepath.Join(s.opts.Dir, id+streamSuffix)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	var resp CreateResponse
	var buildErr error
	// Construction runs on the session's future shard: swarm building
	// and the base checkpoint obey the same deadline and backpressure
	// as every other op.
	runErr := s.run(ctx, sess.shard, func() {
		swarm, err := waggle.NewSwarm(positions, opts...)
		if err != nil {
			buildErr = &badRequestError{err}
			return
		}
		writer, err := swarm.NewCheckpointWriter(sess.path, waggle.CodecDelta)
		if err == nil {
			err = writer.Save()
		}
		if err == nil && sess.streamPath != "" {
			_, err = swarm.NewStreamWriter(sess.streamPath)
		}
		if err != nil {
			buildErr = err
			return
		}
		s.m.CheckpointBytes.Add(int64(writer.LastSaveBytes()))
		sess.swarm, sess.writer = swarm, writer
		sess.robots.Store(int64(swarm.N()))
		sess.touch()
		resp = CreateResponse{ID: id, N: swarm.N(), Protocol: swarm.Protocol().String()}
	})
	if runErr != nil {
		s.failSubmit(w, runErr)
		return
	}
	if buildErr != nil {
		s.fail(w, buildErr)
		return
	}
	s.mu.Lock()
	if len(s.sessions) >= s.opts.MaxSessions {
		s.mu.Unlock()
		_ = sess.remove()
		s.m.Shed.Inc()
		w.Header().Set("Retry-After", s.retryHintFor(nil))
		writeJSON(w, http.StatusServiceUnavailable, errResponse{"session capacity reached"})
		return
	}
	s.sessions[id] = sess
	s.mu.Unlock()
	s.active.Add(1)
	s.m.Created.Inc()
	s.publishGauges()
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	req := StepRequest{Steps: 1}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errResponse{"bad request body: " + err.Error()})
			return
		}
		if req.Steps == 0 {
			req.Steps = 1
		}
	}
	if req.Steps < 1 || req.Steps > s.opts.MaxStepsPerRequest {
		writeJSON(w, http.StatusBadRequest, errResponse{
			fmt.Sprintf("steps: want 1..%d, got %d", s.opts.MaxStepsPerRequest, req.Steps)})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	var resp StepResponse
	err := s.withSession(ctx, id, func(sess *session) error {
		if sess.swarm.Time()+req.Steps > s.opts.StepBudget {
			return fmt.Errorf("%w: %d of %d instants used, %d requested",
				errBudget, sess.swarm.Time(), s.opts.StepBudget, req.Steps)
		}
		for i := 0; i < req.Steps; i++ {
			if err := sess.swarm.Step(); err != nil {
				return err
			}
		}
		s.m.Steps.Add(int64(req.Steps))
		if err := sess.checkpoint(); err != nil {
			return err
		}
		s.m.CheckpointBytes.Add(int64(sess.writer.LastSaveBytes()))
		resp = StepResponse{
			Time:      sess.swarm.Time(),
			Stepped:   req.Steps,
			Delivered: len(sess.swarm.Delivered()),
		}
		return nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSend(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req SendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errResponse{"bad request body: " + err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	var resp SendResponse
	err := s.withSession(ctx, id, func(sess *session) error {
		var err error
		if req.All {
			err = sess.swarm.SendAll(req.From, req.Payload)
		} else {
			err = sess.swarm.Send(req.From, req.To, req.Payload)
		}
		if err != nil {
			return &badRequestError{err}
		}
		s.m.Sends.Inc()
		if err := sess.checkpoint(); err != nil {
			return err
		}
		s.m.CheckpointBytes.Add(int64(sess.writer.LastSaveBytes()))
		resp = SendResponse{Time: sess.swarm.Time()}
		return nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q := r.URL.Query()
	withDigest := q.Get("digest") != "" && q.Get("digest") != "0"
	minDelivered, _ := strconv.Atoi(q.Get("min_delivered"))
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errResponse{"wait: " + err.Error()})
			return
		}
		wait = d
	}
	if wait > s.opts.MaxObserveWait {
		wait = s.opts.MaxObserveWait
	}
	// One deadline governs the whole long-poll: both the loop's expiry
	// check and the submission context derive from the same clock read.
	// (They used to be computed from two separate time.Now() calls, so
	// the context could outlive the loop's deadline by the skew between
	// them and the final poll of a satisfied wait could be skipped; the
	// strict time.Now().After(deadline) check also made wait=0 sleep a
	// full poll period on a coarse clock instead of answering at once.)
	pollDeadline := time.Now().Add(wait)
	ctx, cancel := context.WithDeadline(r.Context(), pollDeadline.Add(s.opts.RequestTimeout))
	defer cancel()
	for {
		var resp ObserveResponse
		err := s.withSession(ctx, id, func(sess *session) error {
			var err error
			resp, err = s.observeLocked(sess, withDigest)
			return err
		})
		if err != nil {
			s.fail(w, err)
			return
		}
		// Long-poll: hold the request open until enough messages have
		// been delivered (by other clients stepping the session) or
		// the wait expires.
		if len(resp.Delivered) >= minDelivered || !time.Now().Before(pollDeadline) {
			writeJSON(w, http.StatusOK, resp)
			return
		}
		sleep := observePollEvery
		if rem := time.Until(pollDeadline); rem < sleep {
			sleep = rem
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(sleep):
		}
	}
}

// observeLocked builds the observable-state reply; runs on the shard.
func (s *Server) observeLocked(sess *session, withDigest bool) (ObserveResponse, error) {
	swarm := sess.swarm
	pts := swarm.Positions()
	positions := make([][2]float64, len(pts))
	for i, p := range pts {
		positions[i] = [2]float64{p.X, p.Y}
	}
	delivered := swarm.Delivered()
	msgs := make([]WireMessage, len(delivered))
	for i, m := range delivered {
		msgs[i] = WireMessage{From: m.From, To: m.To, Payload: m.Payload}
	}
	resp := ObserveResponse{
		ID:             sess.id,
		State:          sess.state(s.opts.IdleAfter),
		Time:           swarm.Time(),
		Resumes:        sess.resumes.Load(),
		StepBudgetLeft: s.opts.StepBudget - swarm.Time(),
		Positions:      positions,
		Delivered:      msgs,
	}
	if withDigest {
		ck, err := swarm.Checkpoint()
		if err != nil {
			return ObserveResponse{}, err
		}
		resp.Digest = ck.State.TraceDigest
	}
	return resp, nil
}

// SpectateMove is one robot relocation inside a spectate record.
type SpectateMove struct {
	Robot int     `json:"robot"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
}

// SpectateEvent is one fault-family trace event inside a spectate
// record.
type SpectateEvent struct {
	Kind  string  `json:"kind"`
	T     int     `json:"t"`
	Robot int     `json:"robot"`
	Peer  int     `json:"peer,omitempty"`
	Val   float64 `json:"val,omitempty"`
}

// SpectateRecord is one decoded waggle-stream/v1 record. Keyframes
// carry the full configuration (Positions, cumulative DeliveredTotal,
// and — on the closing keyframe of a traced session — the trace
// Digest); step records carry the instant's deltas.
type SpectateRecord struct {
	Kind           string          `json:"kind"`
	Offset         int64           `json:"offset"`
	Next           int64           `json:"next_offset"`
	T              int             `json:"t"`
	Positions      [][2]float64    `json:"positions,omitempty"`
	DeliveredTotal int             `json:"delivered_total,omitempty"`
	Digest         string          `json:"digest,omitempty"`
	Moves          []SpectateMove  `json:"moves,omitempty"`
	Active         []int           `json:"active,omitempty"`
	Deliveries     []WireMessage   `json:"deliveries,omitempty"`
	Events         []SpectateEvent `json:"events,omitempty"`
}

// SpectateResponse is the long-poll GET /v1/sessions/{id}/spectate
// reply: the stream records from the requested offset, and the offset
// to pass back to continue the tail. Torn reports a crash-cut trailing
// record still being appended — poll again from NextOffset.
type SpectateResponse struct {
	ID         string           `json:"id"`
	NextOffset int64            `json:"next_offset"`
	Torn       bool             `json:"torn,omitempty"`
	Records    []SpectateRecord `json:"records"`
}

func spectateRecordOf(rec wire.StreamRecord) SpectateRecord {
	out := SpectateRecord{
		Kind:           rec.Kind,
		Offset:         rec.Offset,
		Next:           rec.Next,
		T:              rec.T,
		DeliveredTotal: rec.Delivered,
		Digest:         rec.Digest,
		Active:         rec.Active,
	}
	if len(rec.Positions) > 0 {
		out.Positions = make([][2]float64, len(rec.Positions))
		for i, p := range rec.Positions {
			out.Positions[i] = [2]float64{p.X, p.Y}
		}
	}
	if len(rec.Moves) > 0 {
		out.Moves = make([]SpectateMove, len(rec.Moves))
		for i, m := range rec.Moves {
			out.Moves[i] = SpectateMove{Robot: m.Robot, X: m.To.X, Y: m.To.Y}
		}
	}
	if len(rec.Deliveries) > 0 {
		out.Deliveries = make([]WireMessage, len(rec.Deliveries))
		for i, d := range rec.Deliveries {
			out.Deliveries[i] = WireMessage{From: d.From, To: d.To, Payload: d.Payload}
		}
	}
	if len(rec.Events) > 0 {
		out.Events = make([]SpectateEvent, len(rec.Events))
		for i, e := range rec.Events {
			out.Events[i] = SpectateEvent{
				Kind: obs.EventKind(e.Kind).String(), T: e.T, Robot: e.Robot, Peer: e.Peer, Val: e.Val,
			}
		}
	}
	return out
}

// maxSpectateRecords caps one spectate reply/poll batch.
const maxSpectateRecords = 4096

// handleSpectate tails a session's movement stream. It reads the
// stream file directly — never touching the session, so spectating an
// evicted session does not resume it and spectators do not reset the
// idle clock or contend on the shard queue. ?offset is the record
// boundary to start from (omitted or -1: the latest keyframe, the
// mid-stream join point); ?wait long-polls until records appear past
// the offset; ?max caps the batch; ?sse=1 (or Accept:
// text/event-stream) switches to server-sent events, one event per
// record with the record's next offset as the event id, honoring
// Last-Event-ID on reconnect.
func (s *Server) handleSpectate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.RLock()
	sess := s.sessions[id]
	s.mu.RUnlock()
	if sess == nil || sess.deleted.Load() {
		writeJSON(w, http.StatusNotFound, errResponse{"unknown session"})
		return
	}
	if sess.streamPath == "" {
		writeJSON(w, http.StatusNotFound, errResponse{"session has no stream (server runs without streaming)"})
		return
	}
	q := r.URL.Query()
	offset := int64(-1)
	if v := q.Get("offset"); v != "" {
		o, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errResponse{"offset: " + err.Error()})
			return
		}
		offset = o
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		if o, err := strconv.ParseInt(v, 10, 64); err == nil {
			offset = o
		}
	}
	max := 256
	if v := q.Get("max"); v != "" {
		m, err := strconv.Atoi(v)
		if err != nil || m < 1 {
			writeJSON(w, http.StatusBadRequest, errResponse{"max: want a positive integer"})
			return
		}
		max = m
	}
	if max > maxSpectateRecords {
		max = maxSpectateRecords
	}
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errResponse{"wait: " + err.Error()})
			return
		}
		wait = d
	}
	if wait > s.opts.MaxObserveWait {
		wait = s.opts.MaxObserveWait
	}
	s.m.Spectates.Inc()
	// Same single-deadline discipline as handleObserve.
	pollDeadline := time.Now().Add(wait)
	tail := func(from int64) ([]wire.StreamRecord, int64, bool, error) {
		data, err := os.ReadFile(sess.streamPath)
		if err != nil && !os.IsNotExist(err) {
			return nil, 0, false, err
		}
		// A missing file (recovered session not yet resumed under a
		// newly stream-enabled server) tails as an empty stream.
		return wire.TailStream(data, from, max)
	}
	if q.Get("sse") == "1" || r.Header.Get("Accept") == "text/event-stream" {
		s.spectateSSE(w, r, sess, offset, pollDeadline, tail)
		return
	}
	for {
		recs, next, torn, err := tail(offset)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errResponse{"spectate: " + err.Error()})
			return
		}
		if len(recs) > 0 || !time.Now().Before(pollDeadline) {
			resp := SpectateResponse{ID: sess.id, NextOffset: next, Torn: torn,
				Records: make([]SpectateRecord, len(recs))}
			for i, rec := range recs {
				resp.Records[i] = spectateRecordOf(rec)
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
		sleep := observePollEvery
		if rem := time.Until(pollDeadline); rem < sleep {
			sleep = rem
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(sleep):
		}
	}
}

// spectateSSE is the server-sent-events spectate variant: it pushes
// each stream record as one event until the wait deadline, the client
// disconnecting, or the session disappearing. Event ids are stream
// offsets, so a reconnecting EventSource resumes exactly where it left
// off via Last-Event-ID.
func (s *Server) spectateSSE(w http.ResponseWriter, r *http.Request, sess *session,
	offset int64, pollDeadline time.Time, tail func(int64) ([]wire.StreamRecord, int64, bool, error)) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errResponse{"response writer cannot stream"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		recs, next, _, err := tail(offset)
		if err != nil {
			fmt.Fprintf(w, "event: error\ndata: %q\n\n", err.Error())
			fl.Flush()
			return
		}
		for _, rec := range recs {
			b, err := json.Marshal(spectateRecordOf(rec))
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\ndata: %s\n\n", rec.Next, b)
		}
		if len(recs) > 0 {
			fl.Flush()
			offset = next
		}
		if sess.deleted.Load() || !time.Now().Before(pollDeadline) {
			fmt.Fprintf(w, "event: end\ndata: {\"next_offset\":%d}\n\n", next)
			fl.Flush()
			return
		}
		sleep := observePollEvery
		if rem := time.Until(pollDeadline); rem < sleep {
			sleep = rem
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(sleep):
		}
	}
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.RLock()
	sess := s.sessions[id]
	s.mu.RUnlock()
	if sess == nil {
		writeJSON(w, http.StatusNotFound, errResponse{"unknown session"})
		return
	}
	writeJSON(w, http.StatusOK, s.infoOf(sess))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos := make([]InfoResponse, 0, len(s.sessions))
	for _, sess := range s.sessions {
		infos = append(infos, s.infoOf(sess))
	}
	s.mu.RUnlock()
	active, evicted := s.Counts()
	writeJSON(w, http.StatusOK, ListResponse{Active: active, Evicted: evicted, Sessions: infos})
}

// infoOf reads only atomics — listing sessions must not touch them.
func (s *Server) infoOf(sess *session) InfoResponse {
	return InfoResponse{
		ID:      sess.id,
		State:   sess.state(s.opts.IdleAfter),
		N:       sess.robots.Load(),
		Resumes: sess.resumes.Load(),
		IdleMS:  time.Since(sess.lastTouch()).Milliseconds(),
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.RLock()
	sess := s.sessions[id]
	s.mu.RUnlock()
	if sess == nil {
		writeJSON(w, http.StatusNotFound, errResponse{"unknown session"})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	var opErr error
	wasEvicted := false
	err := s.run(ctx, sess.shard, func() {
		if sess.deleted.Load() {
			opErr = errUnknownSession
			return
		}
		wasEvicted = sess.evicted.Load()
		opErr = sess.remove()
	})
	if err != nil {
		s.failSubmit(w, err)
		return
	}
	if opErr != nil {
		s.fail(w, opErr)
		return
	}
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
	if wasEvicted {
		s.evicted.Add(-1)
	} else {
		s.active.Add(-1)
	}
	s.m.Deletes.Inc()
	s.publishGauges()
	w.WriteHeader(http.StatusNoContent)
}

// badRequestError marks a client-input failure from the swarm layer
// (invalid robot index, oversized payload, ...).
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

// fail maps op errors to HTTP statuses: backpressure and drain → 503
// (+ Retry-After), deadline-expired → 503, budget → 403, unknown
// session → 404, client input → 400, the rest → 500.
func (s *Server) fail(w http.ResponseWriter, err error) {
	var bad *badRequestError
	switch {
	case errors.Is(err, errUnknownSession):
		writeJSON(w, http.StatusNotFound, errResponse{"unknown session"})
	case errors.Is(err, errBudget):
		writeJSON(w, http.StatusForbidden, errResponse{err.Error()})
	case errors.As(err, &bad):
		writeJSON(w, http.StatusBadRequest, errResponse{err.Error()})
	case errors.Is(err, errBusy), errors.Is(err, errDraining), errors.Is(err, errExpired):
		s.failSubmit(w, err)
	default:
		writeJSON(w, http.StatusInternalServerError, errResponse{err.Error()})
	}
}

// failSubmit maps submission failures: all three are "try again later".
func (s *Server) failSubmit(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", s.retryHintFor(err))
	switch {
	case errors.Is(err, errExpired):
		s.m.Expired.Inc()
	default:
		s.m.Shed.Inc()
	}
	writeJSON(w, http.StatusServiceUnavailable, errResponse{err.Error()})
}

// retryHintFor derives the Retry-After hint for a shed request from
// the configured timescale of whatever is being waited out, through
// the same rounding as the token-bucket 429 path (retry.CeilSeconds)
// instead of a hardcoded constant: a drain or an expired deadline
// clears on the order of the request timeout; a full shard queue or
// the session-capacity ceiling clears on the order of a janitor scan.
func (s *Server) retryHintFor(err error) string {
	d := s.opts.EvictScan
	if errors.Is(err, errDraining) || errors.Is(err, errExpired) {
		d = s.opts.RequestTimeout
	}
	return retry.CeilSeconds(d)
}

// buildSwarmOptions maps the JSON session config onto waggle options.
func buildSwarmOptions(req CreateRequest) ([]waggle.Option, error) {
	var opts []waggle.Option
	if req.Synchronous {
		opts = append(opts, waggle.WithSynchronous())
	}
	if req.Identified {
		opts = append(opts, waggle.WithIdentifiedRobots())
	}
	if req.SenseOfDirection {
		opts = append(opts, waggle.WithSenseOfDirection())
	}
	if req.Seed != 0 {
		opts = append(opts, waggle.WithSeed(req.Seed))
	}
	if req.Sigma != 0 {
		opts = append(opts, waggle.WithSigma(req.Sigma))
	}
	if req.Trace {
		opts = append(opts, waggle.WithTrace())
	}
	if req.ActivationProb != 0 {
		opts = append(opts, waggle.WithActivationProbability(req.ActivationProb))
	}
	if req.Levels != 0 {
		opts = append(opts, waggle.WithLevels(req.Levels))
	}
	if req.BoundedSlices != 0 {
		opts = append(opts, waggle.WithBoundedSlices(req.BoundedSlices))
	}
	switch req.Protocol {
	case "", "auto":
	case "sync2":
		opts = append(opts, waggle.WithProtocol(waggle.ProtoSync2))
	case "syncn":
		opts = append(opts, waggle.WithProtocol(waggle.ProtoSyncN))
	case "async2":
		opts = append(opts, waggle.WithProtocol(waggle.ProtoAsync2))
	case "asyncn":
		opts = append(opts, waggle.WithProtocol(waggle.ProtoAsyncN))
	case "asyncbounded":
		opts = append(opts, waggle.WithProtocol(waggle.ProtoAsyncBounded))
	default:
		return nil, fmt.Errorf("unknown protocol %q", req.Protocol)
	}
	switch req.Scheduler {
	case "", "random":
	case "roundrobin":
		opts = append(opts, waggle.WithScheduler(waggle.SchedulerRoundRobin))
	default:
		return nil, fmt.Errorf("unknown scheduler %q (random|roundrobin)", req.Scheduler)
	}
	switch req.Engine {
	case "", "auto":
	case "sequential":
		opts = append(opts, waggle.WithEngine(waggle.EngineSequential))
	case "parallel":
		opts = append(opts, waggle.WithEngine(waggle.EngineParallel))
	default:
		return nil, fmt.Errorf("unknown engine %q (auto|sequential|parallel)", req.Engine)
	}
	return opts, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
