package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

// postJSON issues one request from a racing goroutine: no testing.T
// calls, just the status (0 on transport error).
func postJSON(method, url string, body any) int {
	var rd io.Reader
	if body != nil {
		b, _ := json.Marshal(body)
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestConcurrentLifecycle races create/step/send/observe/evict/resume/
// list/delete against one session id (plus churn on other ids) — the
// -race exercise for the shard-pinning and drain-gate invariants. Any
// documented status is acceptable per request; what must hold is that
// nothing races, the server stays serviceable, and the final delete
// wins.
func TestConcurrentLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Options{StepBudget: 10_000_000})
	created := createSession(t, ts.URL, CreateRequest{
		Positions: [][2]float64{{0, 0}, {9, 0}, {0, 7}, {6, 6}},
		Seed:      99,
	})
	sessURL := ts.URL + "/v1/sessions/" + created.ID

	ok := map[int]bool{
		http.StatusOK: true, http.StatusAccepted: true, http.StatusCreated: true,
		http.StatusNoContent: true, http.StatusNotFound: true, http.StatusForbidden: true,
		http.StatusServiceUnavailable: true, http.StatusTooManyRequests: true,
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var unexpected []int
	record := func(status int) {
		if !ok[status] && status != 0 {
			mu.Lock()
			unexpected = append(unexpected, status)
			mu.Unlock()
		}
	}
	loop := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
				}
			}
		}()
	}
	for i := 0; i < 3; i++ {
		loop(func() { record(postJSON("POST", sessURL+"/step", StepRequest{Steps: 20})) })
	}
	loop(func() {
		record(postJSON("POST", sessURL+"/send", SendRequest{From: 0, To: 1, Payload: []byte("r")}))
	})
	loop(func() { record(postJSON("GET", sessURL+"/observe", nil)) })
	loop(func() { record(postJSON("GET", ts.URL+"/v1/sessions", nil)); record(postJSON("GET", sessURL, nil)) })
	loop(func() {
		// Force evict/resume churn on everything live.
		s.EvictIdle(0)
		time.Sleep(time.Millisecond)
	})
	loop(func() {
		// Churn other ids through create → step → delete.
		var resp CreateResponse
		status := func() int {
			b, _ := json.Marshal(CreateRequest{Positions: [][2]float64{{0, 0}, {5, 0}}, Seed: 1})
			r, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(b))
			if err != nil {
				return 0
			}
			defer r.Body.Close()
			if r.StatusCode == http.StatusCreated {
				json.NewDecoder(r.Body).Decode(&resp)
			} else {
				io.Copy(io.Discard, r.Body)
			}
			return r.StatusCode
		}()
		record(status)
		if status == http.StatusCreated {
			record(postJSON("POST", ts.URL+"/v1/sessions/"+resp.ID+"/step", nil))
			record(postJSON("DELETE", ts.URL+"/v1/sessions/"+resp.ID, nil))
		}
	})

	time.Sleep(300 * time.Millisecond)
	if status := postJSON("DELETE", sessURL, nil); status != http.StatusNoContent {
		t.Errorf("delete of contended session: status %d", status)
	}
	close(stop)
	wg.Wait()
	if len(unexpected) > 0 {
		t.Fatalf("unexpected statuses under contention: %v", unexpected)
	}
	if status := postJSON("GET", sessURL, nil); status != http.StatusNotFound {
		t.Fatal("deleted session still resolvable")
	}
	// The server must still serve new sessions after the storm.
	fresh := createSession(t, ts.URL, twoRobotConfig(123))
	if status := postJSON("POST", ts.URL+"/v1/sessions/"+fresh.ID+"/step", StepRequest{Steps: 5}); status != http.StatusOK {
		t.Fatalf("post-storm step: status %d", status)
	}
}

// TestAbortRestartResumesAll is the kill-the-server-mid-step test:
// sessions are hammered with steps while the server is aborted (the
// kill -9 double — no drain, no final checkpoints). A restarted server
// on the same dir must resume every session from its last acknowledged
// op, and recovery must be byte-identical: two successive restarts
// observe exactly the same state for every session.
func TestAbortRestartResumesAll(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Options{Dir: dir, StepBudget: 1_000_000})
	const nSessions = 6
	ids := make([]string, nSessions)
	floors := make(map[string]int, nSessions)
	for i := range ids {
		cfg := CreateRequest{
			Positions: [][2]float64{{0, 0}, {9, 0}, {0, 7}, {6, 6}},
			Seed:      int64(100 + i),
			Trace:     true,
		}
		ids[i] = createSession(t, ts1.URL, cfg).ID
		steps := 30 * (i + 1)
		if status := postJSON("POST", ts1.URL+"/v1/sessions/"+ids[i]+"/step", StepRequest{Steps: steps}); status != http.StatusOK {
			t.Fatalf("seed step session %d: status %d", i, status)
		}
		floors[ids[i]] = steps // acknowledged → durable before the kill
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, id := range ids {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					postJSON("POST", ts1.URL+"/v1/sessions/"+id+"/step", StepRequest{Steps: 50})
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	s1.Abort() // mid-step: in-flight ops finish, queued ops are skipped
	close(stop)
	wg.Wait()
	ts1.Close()

	s2, ts2 := newTestServer(t, Options{Dir: dir, StepBudget: 1_000_000})
	active, evicted := s2.Counts()
	if active != 0 || evicted != nSessions {
		t.Fatalf("restart #1 counts: active=%d evicted=%d, want 0/%d", active, evicted, nSessions)
	}
	first := make(map[string]ObserveResponse, nSessions)
	for _, id := range ids {
		o := observeDigest(t, ts2.URL+"/v1/sessions/"+id)
		if o.Time < floors[id] {
			t.Fatalf("session %s resumed at t=%d, below acknowledged floor %d", id, o.Time, floors[id])
		}
		if o.Digest == "" {
			t.Fatalf("session %s has no trace digest after resume", id)
		}
		first[id] = o
	}
	// Observing resumed sessions but appended nothing: the chains on
	// disk are unchanged, so a second kill + restart must land on
	// byte-identical state.
	s2.Abort()
	ts2.Close()

	_, ts3 := newTestServer(t, Options{Dir: dir, StepBudget: 1_000_000})
	for _, id := range ids {
		o := observeDigest(t, ts3.URL+"/v1/sessions/"+id)
		a, _ := json.Marshal(first[id])
		b, _ := json.Marshal(o)
		if !bytes.Equal(a, b) {
			t.Fatalf("restart #2 diverged for %s:\n first %s\nsecond %s", id, a, b)
		}
		// And every resumed session keeps serving.
		if status := postJSON("POST", ts3.URL+"/v1/sessions/"+id+"/step", StepRequest{Steps: 1}); status != http.StatusOK {
			t.Fatalf("post-restart step on %s: status %d", id, status)
		}
	}
}
