// Package render draws swarm configurations as ASCII diagrams and CSV
// tables — the output side of the figure regeneration tools
// (cmd/waggle-figures) and the sweep harness (cmd/waggle-sweep).
package render

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"waggle/internal/geom"
)

// Canvas is a character grid mapped onto a world-space rectangle.
type Canvas struct {
	cols, rows             int
	minX, minY, maxX, maxY float64
	cells                  [][]rune
}

// NewCanvas creates a canvas of the given character size covering the
// world rectangle. Degenerate rectangles are inflated slightly.
func NewCanvas(cols, rows int, minX, minY, maxX, maxY float64) *Canvas {
	if maxX-minX < 1e-9 {
		maxX = minX + 1
	}
	if maxY-minY < 1e-9 {
		maxY = minY + 1
	}
	cells := make([][]rune, rows)
	for y := range cells {
		cells[y] = make([]rune, cols)
		for x := range cells[y] {
			cells[y][x] = ' '
		}
	}
	return &Canvas{cols: cols, rows: rows, minX: minX, minY: minY, maxX: maxX, maxY: maxY, cells: cells}
}

// CanvasFor creates a canvas sized to the given points with a margin.
func CanvasFor(pts []geom.Point, cols, rows int, margin float64) *Canvas {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if len(pts) == 0 {
		minX, minY, maxX, maxY = 0, 0, 1, 1
	}
	return NewCanvas(cols, rows, minX-margin, minY-margin, maxX+margin, maxY+margin)
}

// cell maps a world point to grid coordinates.
func (c *Canvas) cell(p geom.Point) (int, int, bool) {
	fx := (p.X - c.minX) / (c.maxX - c.minX)
	fy := (p.Y - c.minY) / (c.maxY - c.minY)
	x := int(math.Round(fx * float64(c.cols-1)))
	// The y axis points up in the world, down on the grid.
	y := int(math.Round((1 - fy) * float64(c.rows-1)))
	if x < 0 || x >= c.cols || y < 0 || y >= c.rows {
		return 0, 0, false
	}
	return x, y, true
}

// Plot places a rune at a world point.
func (c *Canvas) Plot(p geom.Point, r rune) {
	if x, y, ok := c.cell(p); ok {
		c.cells[y][x] = r
	}
}

// Label writes a string starting at a world point.
func (c *Canvas) Label(p geom.Point, s string) {
	x, y, ok := c.cell(p)
	if !ok {
		return
	}
	for i, r := range s {
		if x+i >= c.cols {
			break
		}
		c.cells[y][x+i] = r
	}
}

// Circle draws a circle outline.
func (c *Canvas) Circle(circle geom.Circle, r rune) {
	steps := 4 * (c.cols + c.rows)
	for i := 0; i < steps; i++ {
		theta := float64(i) / float64(steps) * 2 * math.Pi
		c.Plot(circle.PointAt(theta), r)
	}
}

// Segment draws a straight segment.
func (c *Canvas) Segment(s geom.Segment, r rune) {
	steps := 2 * (c.cols + c.rows)
	for i := 0; i <= steps; i++ {
		c.Plot(s.At(float64(i)/float64(steps)), r)
	}
}

// Polygon draws a polygon outline.
func (c *Canvas) Polygon(pg geom.Polygon, r rune) {
	vs := pg.Vertices()
	for i := range vs {
		c.Segment(geom.Segment{A: vs[i], B: vs[(i+1)%len(vs)]}, r)
	}
}

// String renders the canvas.
func (c *Canvas) String() string {
	var b strings.Builder
	for _, row := range c.cells {
		b.WriteString(strings.TrimRight(string(row), " "))
		b.WriteByte('\n')
	}
	return b.String()
}

// Table formats rows as an aligned text table with a header.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Header returns the column headers.
func (t *Table) Header() []string { return append([]string(nil), t.header...) }

// Rows returns a copy of the formatted rows, in insertion (or sorted)
// order — the machine-readable form behind the JSON report writers.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, row := range t.rows {
		out[i] = append([]string(nil), row...)
	}
	return out
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// SortRowsBy sorts rows by the given column, numerically when possible.
func (t *Table) SortRowsBy(col int) {
	sort.SliceStable(t.rows, func(i, j int) bool {
		var a, b float64
		_, errA := fmt.Sscanf(t.rows[i][col], "%g", &a)
		_, errB := fmt.Sscanf(t.rows[j][col], "%g", &b)
		if errA == nil && errB == nil {
			return a < b
		}
		return t.rows[i][col] < t.rows[j][col]
	})
}
