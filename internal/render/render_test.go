package render

import (
	"strings"
	"testing"

	"waggle/internal/geom"
)

func TestCanvasPlot(t *testing.T) {
	c := NewCanvas(11, 11, 0, 0, 10, 10)
	c.Plot(geom.Pt(0, 0), 'a')   // bottom-left => last row, first col
	c.Plot(geom.Pt(10, 10), 'b') // top-right => first row, last col
	c.Plot(geom.Pt(5, 5), 'c')
	out := strings.Split(strings.TrimRight(c.String(), "\n"), "\n")
	if len(out) != 11 {
		t.Fatalf("rows = %d, want 11", len(out))
	}
	if out[10][0] != 'a' {
		t.Errorf("bottom-left = %q", out[10][0])
	}
	if len(out[0]) < 11 || out[0][10] != 'b' {
		t.Errorf("top-right row = %q", out[0])
	}
	if out[5][5] != 'c' {
		t.Errorf("center row = %q", out[5])
	}
}

func TestCanvasOutOfBoundsIgnored(t *testing.T) {
	c := NewCanvas(5, 5, 0, 0, 1, 1)
	c.Plot(geom.Pt(50, 50), 'x') // silently dropped
	if strings.ContainsRune(c.String(), 'x') {
		t.Error("out-of-bounds point drawn")
	}
}

func TestCanvasFor(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 5)}
	c := CanvasFor(pts, 40, 12, 1)
	for _, p := range pts {
		c.Plot(p, '*')
	}
	if got := strings.Count(c.String(), "*"); got != 2 {
		t.Errorf("plotted %d points, want 2", got)
	}
}

func TestCanvasShapes(t *testing.T) {
	c := NewCanvas(41, 21, -2, -2, 2, 2)
	c.Circle(geom.Circle{Center: geom.Pt(0, 0), R: 1.5}, 'o')
	c.Segment(geom.Segment{A: geom.Pt(-1, 0), B: geom.Pt(1, 0)}, '-')
	c.Polygon(geom.Box(-1, -1, 1, 1), '#')
	out := c.String()
	for _, r := range []string{"o", "-", "#"} {
		if !strings.Contains(out, r) {
			t.Errorf("shape rune %q missing", r)
		}
	}
}

func TestCanvasLabel(t *testing.T) {
	c := NewCanvas(20, 3, 0, 0, 10, 2)
	c.Label(geom.Pt(0, 1), "hello")
	if !strings.Contains(c.String(), "hello") {
		t.Error("label missing")
	}
	// Labels are clipped at the right edge rather than wrapping.
	c.Label(geom.Pt(9.9, 1), "longlabel")
	for _, line := range strings.Split(c.String(), "\n") {
		if len(line) > 20 {
			t.Errorf("line overflows canvas: %q", line)
		}
	}
}

func TestDegenerateCanvas(t *testing.T) {
	c := NewCanvas(5, 5, 3, 3, 3, 3) // zero-size world rect
	c.Plot(geom.Pt(3, 3), 'z')
	if !strings.ContainsRune(c.String(), 'z') {
		t.Error("degenerate rect not inflated")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("n", "steps", "ratio")
	tb.AddRow(4, 120, 1.5)
	tb.AddRow(16, 480, 0.333333)
	out := tb.String()
	if !strings.Contains(out, "n") || !strings.Contains(out, "480") {
		t.Errorf("table missing data:\n%s", out)
	}
	if !strings.Contains(out, "0.333") {
		t.Errorf("float not compacted:\n%s", out)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "n,steps,ratio\n") {
		t.Errorf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "4,120,1.5") {
		t.Errorf("csv row missing: %q", csv)
	}
}

func TestTableSort(t *testing.T) {
	tb := NewTable("k", "v")
	tb.AddRow(32, "a")
	tb.AddRow(4, "b")
	tb.AddRow(256, "c")
	tb.SortRowsBy(0)
	csv := tb.CSV()
	i4 := strings.Index(csv, "4,b")
	i32 := strings.Index(csv, "32,a")
	i256 := strings.Index(csv, "256,c")
	if !(i4 < i32 && i32 < i256) {
		t.Errorf("numeric sort wrong:\n%s", csv)
	}
}
