package render

import (
	"strings"
	"testing"

	"waggle/internal/geom"
)

func TestSVGDocumentStructure(t *testing.T) {
	s := NewSVG(0, 0, 10, 5, 200)
	s.Dot(geom.Pt(1, 1), 3, "#000")
	s.Circle(geom.Circle{Center: geom.Pt(5, 2), R: 2}, "#f00", 1)
	s.Line(geom.Segment{A: geom.Pt(0, 0), B: geom.Pt(10, 5)}, "#0f0", 1)
	s.Polygon(geom.Box(1, 1, 3, 3), "#00f", 1)
	s.Path([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1), geom.Pt(2, 0)}, "#999", 1)
	s.Text(geom.Pt(2, 2), `a<b&"c"`, "#000", 10)
	out := s.String()
	for _, frag := range []string{"<svg", "</svg>", "<circle", "<line", "<polygon", "<polyline", "<text", "a&lt;b&amp;&quot;c&quot;"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in SVG output", frag)
		}
	}
	// Height follows the aspect ratio: 200 * (5/10) = 100.
	if !strings.Contains(out, `height="100"`) {
		t.Errorf("wrong height: %s", out[:120])
	}
}

func TestSVGYAxisFlipped(t *testing.T) {
	s := NewSVG(0, 0, 10, 10, 100)
	s.Dot(geom.Pt(0, 10), 1, "#000") // world top-left -> pixel y = 0
	out := s.String()
	if !strings.Contains(out, `cx="0.00" cy="0.00"`) {
		t.Errorf("y axis not flipped:\n%s", out)
	}
}

func TestSVGForDegenerate(t *testing.T) {
	s := SVGFor(nil, 100, 1)
	if !strings.Contains(s.String(), "<svg") {
		t.Error("degenerate SVG invalid")
	}
	s2 := SVGFor([]geom.Point{geom.Pt(3, 3)}, 0, 0)
	if !strings.Contains(s2.String(), "<svg") {
		t.Error("single-point SVG invalid")
	}
}

func TestSVGEmptyShapesIgnored(t *testing.T) {
	s := NewSVG(0, 0, 1, 1, 100)
	s.Path([]geom.Point{geom.Pt(0, 0)}, "#000", 1) // too short
	s.Polygon(Polygonless(), "#000", 1)
	if strings.Contains(s.String(), "polyline") || strings.Contains(s.String(), "polygon") {
		t.Error("degenerate shapes emitted")
	}
}

// Polygonless returns an empty polygon.
func Polygonless() geom.Polygon { return geom.NewPolygon(nil) }
