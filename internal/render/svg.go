package render

import (
	"fmt"
	"math"
	"strings"

	"waggle/internal/geom"
)

// SVG builds a standalone SVG document over a world-space viewport. The
// y axis is flipped so the world's +y points up, as in the paper's
// figures.
type SVG struct {
	minX, minY, maxX, maxY float64
	width                  float64
	body                   strings.Builder
}

// NewSVG creates a document covering the given world rectangle,
// rendered at the given pixel width (height follows the aspect ratio).
func NewSVG(minX, minY, maxX, maxY, width float64) *SVG {
	if maxX-minX < 1e-9 {
		maxX = minX + 1
	}
	if maxY-minY < 1e-9 {
		maxY = minY + 1
	}
	if width <= 0 {
		width = 640
	}
	return &SVG{minX: minX, minY: minY, maxX: maxX, maxY: maxY, width: width}
}

// SVGFor creates a document sized to the given points with a margin.
func SVGFor(pts []geom.Point, width, margin float64) *SVG {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if len(pts) == 0 {
		minX, minY, maxX, maxY = 0, 0, 1, 1
	}
	return NewSVG(minX-margin, minY-margin, maxX+margin, maxY+margin, width)
}

func (s *SVG) scale() float64 { return s.width / (s.maxX - s.minX) }

func (s *SVG) height() float64 { return (s.maxY - s.minY) * s.scale() }

func (s *SVG) px(p geom.Point) (float64, float64) {
	k := s.scale()
	return (p.X - s.minX) * k, s.height() - (p.Y-s.minY)*k
}

// Dot draws a filled dot at a world point.
func (s *SVG) Dot(p geom.Point, radiusPx float64, color string) {
	x, y := s.px(p)
	fmt.Fprintf(&s.body, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"/>`+"\n",
		x, y, radiusPx, color)
}

// Circle draws a circle outline with a world-space radius.
func (s *SVG) Circle(c geom.Circle, color string, widthPx float64) {
	x, y := s.px(c.Center)
	fmt.Fprintf(&s.body,
		`<circle cx="%.2f" cy="%.2f" r="%.2f" fill="none" stroke="%s" stroke-width="%.2f"/>`+"\n",
		x, y, c.R*s.scale(), color, widthPx)
}

// Line draws a segment.
func (s *SVG) Line(seg geom.Segment, color string, widthPx float64) {
	x1, y1 := s.px(seg.A)
	x2, y2 := s.px(seg.B)
	fmt.Fprintf(&s.body,
		`<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>`+"\n",
		x1, y1, x2, y2, color, widthPx)
}

// Polygon draws a closed polygon outline.
func (s *SVG) Polygon(pg geom.Polygon, color string, widthPx float64) {
	vs := pg.Vertices()
	if len(vs) == 0 {
		return
	}
	var pb strings.Builder
	for i, v := range vs {
		x, y := s.px(v)
		if i > 0 {
			pb.WriteByte(' ')
		}
		fmt.Fprintf(&pb, "%.2f,%.2f", x, y)
	}
	fmt.Fprintf(&s.body,
		`<polygon points="%s" fill="none" stroke="%s" stroke-width="%.2f"/>`+"\n",
		pb.String(), color, widthPx)
}

// Path draws a polyline through world points (a robot trajectory).
func (s *SVG) Path(pts []geom.Point, color string, widthPx float64) {
	if len(pts) < 2 {
		return
	}
	var pb strings.Builder
	for i, p := range pts {
		x, y := s.px(p)
		if i > 0 {
			pb.WriteByte(' ')
		}
		fmt.Fprintf(&pb, "%.2f,%.2f", x, y)
	}
	fmt.Fprintf(&s.body,
		`<polyline points="%s" fill="none" stroke="%s" stroke-width="%.2f" stroke-linejoin="round"/>`+"\n",
		pb.String(), color, widthPx)
}

// Text writes a label anchored at a world point.
func (s *SVG) Text(p geom.Point, label, color string, sizePx float64) {
	x, y := s.px(p)
	fmt.Fprintf(&s.body,
		`<text x="%.2f" y="%.2f" fill="%s" font-size="%.1f" font-family="monospace">%s</text>`+"\n",
		x, y, color, sizePx, escapeXML(label))
}

// String renders the complete SVG document.
func (s *SVG) String() string {
	return fmt.Sprintf(
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+
			"\n<rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n%s</svg>\n",
		s.width, s.height(), s.width, s.height(), s.body.String())
}

func escapeXML(t string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(t)
}
